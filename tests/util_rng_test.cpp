#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace opckit::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(99);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(99);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(7);
  EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanReasonable) {
  Rng r(17);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng r(23);
  EXPECT_THROW(r.uniform_int(5, 4), CheckError);
}

}  // namespace
}  // namespace opckit::util
