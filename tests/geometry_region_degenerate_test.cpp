/// Degenerate-input regressions for the Region canonical form — the
/// cases the scanline MRC engine leans on hardest: touching boxes must
/// merge into single slab intervals (no phantom zero-width gaps),
/// zero-area inputs must vanish, slivers must survive exactly, and
/// scaled() must be a pure coordinate map.
#include <gtest/gtest.h>

#include "geometry/geometry.h"

namespace opckit::geom {
namespace {

TEST(RegionDegenerate, EdgeTouchingBoxesMergeIntoOneInterval) {
  // Abutting side-by-side: canonical form must fuse the intervals —
  // a seam would read as a zero-width gap to the space scan.
  const Region r =
      Region{Rect(0, 0, 100, 100)}.united(Region{Rect(100, 0, 200, 100)});
  EXPECT_EQ(r, Region{Rect(0, 0, 200, 100)});
  EXPECT_EQ(r.rect_count(), 1u);
  EXPECT_EQ(r.polygons().size(), 1u);

  // Abutting stacked: slabs with identical interval lists coalesce.
  const Region v =
      Region{Rect(0, 0, 100, 100)}.united(Region{Rect(0, 100, 100, 250)});
  EXPECT_EQ(v, Region{Rect(0, 0, 100, 250)});
  EXPECT_EQ(v.slabs().size(), 1u);
}

TEST(RegionDegenerate, PartialSharedEdgeKeepsCollinearBoundary) {
  // Offset abutment: the shared x=100 line is boundary above/below the
  // contact but interior inside it. Area and contours must be exact.
  const Region r =
      Region{Rect(0, 0, 100, 300)}.united(Region{Rect(100, 100, 200, 200)});
  EXPECT_EQ(r.area(), 100 * 300 + 100 * 100);
  EXPECT_EQ(r.polygons().size(), 1u);
  EXPECT_EQ(r.components().size(), 1u);
  EXPECT_TRUE(r.contains({100, 150}));  // interior of the fused edge
  EXPECT_TRUE(r.contains({100, 50}));   // boundary (closed semantics)
  EXPECT_FALSE(r.contains({101, 50}));
}

TEST(RegionDegenerate, ZeroAreaRectsVanish) {
  EXPECT_TRUE(Region{Rect(10, 10, 10, 500)}.empty());  // zero width
  EXPECT_TRUE(Region{Rect(10, 10, 500, 10)}.empty());  // zero height
  const Region r = Region{Rect(0, 0, 100, 100)}
                       .united(Region{Rect(200, 0, 200, 100)})
                       .united(Region{Rect(0, 200, 100, 200)});
  EXPECT_EQ(r, Region{Rect(0, 0, 100, 100)});
  // Subtracting a degenerate region is a no-op, not a sliver cut.
  EXPECT_EQ(r.subtracted(Region{Rect(50, 0, 50, 100)}), r);
}

TEST(RegionDegenerate, SingleUnitSliversSurviveExactly) {
  const Region hair{Rect(0, 0, 1, 1000)};
  EXPECT_EQ(hair.area(), 1000);
  EXPECT_EQ(hair.bbox(), Rect(0, 0, 1, 1000));
  // A 1-unit bite out of a solid square leaves exactly area-1.
  const Region bitten = Region{Rect(0, 0, 100, 100)}.subtracted(
      Region{Rect(50, 99, 51, 100)});
  EXPECT_EQ(bitten.area(), 100 * 100 - 1);
  EXPECT_FALSE(bitten.contains({51, 100}) &&
               !Region{Rect(0, 0, 100, 100)}.contains({51, 100}));
  // And the subtraction round-trips through the union.
  EXPECT_EQ(bitten.united(Region{Rect(50, 99, 51, 100)}),
            Region{Rect(0, 0, 100, 100)});
}

TEST(RegionDegenerate, CornerTouchingSquaresStaySeparate) {
  const Region r =
      Region{Rect(0, 0, 100, 100)}.united(Region{Rect(100, 100, 200, 200)});
  EXPECT_EQ(r.area(), 2 * 100 * 100);
  EXPECT_EQ(r.components().size(), 2u);  // point contact does not connect
  EXPECT_EQ(r.polygons().size(), 2u);    // the 4-valent vertex is split
  EXPECT_TRUE(r.contains({100, 100}));   // but the point itself is in
}

TEST(RegionScaled, ScalesAreaAndBboxExactly) {
  const Region r = Region{Rect(0, 0, 100, 300)}
                       .united(Region{Rect(100, 100, 200, 200)})
                       .subtracted(Region{Rect(20, 20, 40, 40)});
  const Region s = r.scaled(2);
  EXPECT_EQ(s.area(), 4 * r.area());
  EXPECT_EQ(s.bbox(), Rect(0, 0, 400, 600));
  EXPECT_EQ(s.rect_count(), r.rect_count());  // pure coordinate map
  EXPECT_EQ(s.polygons().size(), r.polygons().size());
}

TEST(RegionScaled, IdentityEmptyAndComposition) {
  const Region r =
      Region{Rect(-50, -50, 50, 50)}.united(Region{Rect(60, 0, 100, 10)});
  EXPECT_EQ(r.scaled(1), r);
  EXPECT_TRUE(Region().scaled(3).empty());
  // scaled(2).scaled(3) == scaled(6), including negative coordinates.
  EXPECT_EQ(r.scaled(2).scaled(3), r.scaled(6));
  EXPECT_EQ(r.scaled(2).bbox().lo, Point(-100, -100));
}

}  // namespace
}  // namespace opckit::geom
