/// Flow-level observability tests: trace output of real tiled flows,
/// the tracing on/off output-identity guarantee, and the metrics
/// snapshot embedded in FlowStats.
///
/// Named TraceFlow* so tools/ci.sh can select them (with ThreadPool and
/// FlowParallel) for the thread-sanitizer job — the traced jobs=8 flow
/// exercises the per-thread span buffers under real contention.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/flow.h"
#include "layout/generators.h"
#include "trace/trace.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 3;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Two-placement chip with context coupling (pitch below the halo).
Library two_tile_chip() {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", 2, 1, {1400, 1800});
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const std::string& cell,
                                        const FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceFlow, TwoTileFlowEmitsBalancedSpanTaxonomy) {
  FlowSpec spec = fast_flow();
  spec.jobs = 2;
  Library lib = two_tile_chip();

  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.start();
  run_flat_opc(lib, "top", spec);
  tracer.stop();
  const std::string json = tracer.to_json();

  // The trace_event envelope chrome://tracing expects.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));

  // The documented span taxonomy, all present: the flow envelope, the
  // four phases, and per-tile spans on the parallel phases.
  for (const char* name :
       {"flow.flat", "flow.gather", "flow.resolve", "flow.solve",
        "flow.merge", "flow.gather.tile", "flow.solve.tile"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  // 2 placements x 2 context passes, every tile begun exactly once.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"flow.gather.tile\",\"cat\":"
                                    "\"opckit\",\"ph\":\"B\""),
            4u);
}

TEST(TraceFlow, OutputByteIdenticalTracingOnOrOff) {
  FlowSpec spec = fast_flow();
  Library ref_lib = two_tile_chip();
  spec.jobs = 1;
  const FlowStats ref_stats = run_flat_opc(ref_lib, "top", spec);
  const auto ref = output_polys(ref_lib, "top", spec);
  ASSERT_FALSE(ref.empty());

  for (int jobs : {1, 2, 8}) {
    spec.jobs = jobs;
    Library lib = two_tile_chip();
    trace::Tracer::instance().start();
    const FlowStats stats = run_flat_opc(lib, "top", spec);
    trace::Tracer::instance().stop();
    EXPECT_EQ(output_polys(lib, "top", spec), ref) << "jobs=" << jobs;
    EXPECT_EQ(stats.opc_runs, ref_stats.opc_runs) << "jobs=" << jobs;
    EXPECT_EQ(stats.tile_simulations, ref_stats.tile_simulations)
        << "jobs=" << jobs;
  }
}

TEST(TraceFlow, TracedJobs8FlowKeepsPerThreadBuffersClean) {
  // The TSan target: eight workers emitting gather/solve tile spans into
  // per-thread buffers while the driver thread runs the phase scopes,
  // then a serial merge reads everything back for rendering.
  FlowSpec spec = fast_flow();
  spec.jobs = 8;
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", 4, 2, {1400, 1800});

  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.start();
  run_flat_opc(lib, "top", spec);
  tracer.stop();
  EXPECT_EQ(count_occurrences(tracer.to_json(), "\"ph\":\"B\""),
            count_occurrences(tracer.to_json(), "\"ph\":\"E\""));
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(TraceFlow, UntracedFlowHotPathDoesNotAllocateInTracer) {
  trace::Tracer& tracer = trace::Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  const std::size_t allocs = tracer.debug_allocations();
  FlowSpec spec = fast_flow();
  spec.jobs = 2;
  Library lib = two_tile_chip();
  run_flat_opc(lib, "top", spec);
  // Every span the flow constructed was a no-op: no buffer registration,
  // no event storage.
  EXPECT_EQ(tracer.debug_allocations(), allocs);
}

TEST(TraceFlow, FlowStatsEmbedTheRunsMetricsDelta) {
  FlowSpec spec = fast_flow();
  spec.jobs = 2;
  Library lib = two_tile_chip();
  const FlowStats stats = run_flat_opc(lib, "top", spec);

  const auto& c = stats.metrics.counters;
  EXPECT_EQ(c.at(trace::metric::kFlowOpcRuns), stats.opc_runs);
  EXPECT_EQ(c.at(trace::metric::kFlowSimulations), stats.simulations);
  EXPECT_EQ(c.at(trace::metric::kFlowCorrectedPolygons),
            stats.corrected_polygons);
  EXPECT_EQ(c.at(trace::metric::kFlowTilesMerged),
            stats.tile_simulations.size());
  EXPECT_EQ(c.at(trace::metric::kCacheHits) +
                c.at(trace::metric::kCacheSymmetryHits),
            stats.cache_hits);
  EXPECT_EQ(c.at(trace::metric::kCacheMisses), stats.cache_misses);
  // The litho instruments fired: every fresh solve images its tile.
  // The planned engine runs the mask spectrum through the r2c forward
  // and the imaging inverses as fused sparse batches — the dense
  // complex counter (litho.fft2d_transforms) stays 0 in a flow.
  EXPECT_GT(c.at(trace::metric::kLithoAerialImages), 0u);
  EXPECT_GT(c.at(trace::metric::kLithoFftR2cTransforms), 0u);
  EXPECT_GT(c.at(trace::metric::kLithoFftBatchedTransforms), 0u);
  EXPECT_GT(c.at(trace::metric::kLithoFftPlanHits), 0u);
  EXPECT_GT(c.at(trace::metric::kLithoRasterCells), 0u);
  // Phase wall-times were measured (gather/solve did real work).
  EXPECT_GT(stats.metrics.gauges.at(trace::metric::kFlowPhaseSolveMs), 0.0);
  // The per-tile histogram saw exactly the merged tiles.
  EXPECT_EQ(stats.metrics.histograms.at(trace::metric::kFlowTileSimulations)
                .total(),
            stats.tile_simulations.size());
}

TEST(TraceFlow, CellFlowEmitsItsOwnEnvelopeSpan) {
  FlowSpec spec = fast_flow();
  spec.jobs = 2;
  Library lib = two_tile_chip();
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.start();
  run_cell_opc(lib, "top", spec);
  tracer.stop();
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"name\":\"flow.cell\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"flow.flat\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

}  // namespace
}  // namespace opckit::opc
