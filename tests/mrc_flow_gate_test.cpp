/// Post-OPC MRC signoff gate: determinism across job counts, fail/warn
/// actions, per-tile accounting, metrics, and the stats JSON embedding.
#include <gtest/gtest.h>

#include "core/flow.h"
#include "layout/generators.h"
#include "trace/metrics.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 3;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

Library dense_chip(int cols, int rows) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const std::string& cell,
                                        const FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

/// A deck the ~180nm corrected features can always satisfy.
mrc::Deck clean_deck() {
  return {{mrc::CheckKind::kWidth, "gate.width", 2},
          {mrc::CheckKind::kSpace, "gate.space", 2}};
}

/// A deck the corrected mask can never satisfy (features are ~180 wide).
mrc::Deck violating_deck() {
  return {{mrc::CheckKind::kWidth, "gate.width", 500}};
}

TEST(MrcFlowGate, CleanDeckIdenticalOutputAndReportAcrossJobCounts) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = clean_deck();
  spec.mrc_action = mrc::Action::kFail;  // clean mask: must not throw

  spec.jobs = 1;
  Library serial = dense_chip(2, 2);
  const FlowStats s1 = run_flat_opc(serial, "top", spec);
  const auto ref = output_polys(serial, "top", spec);
  ASSERT_FALSE(ref.empty());
  EXPECT_TRUE(s1.mrc_checked);
  EXPECT_TRUE(s1.mrc.clean());
  EXPECT_EQ(s1.tile_mrc_violations.size(), 4u);  // one per placement

  for (int jobs : {2, 8}) {
    spec.jobs = jobs;
    Library lib = dense_chip(2, 2);
    const FlowStats s = run_flat_opc(lib, "top", spec);
    EXPECT_EQ(output_polys(lib, "top", spec), ref) << "jobs=" << jobs;
    EXPECT_EQ(s.mrc.violations, s1.mrc.violations) << "jobs=" << jobs;
    EXPECT_EQ(s.tile_mrc_violations, s1.tile_mrc_violations)
        << "jobs=" << jobs;
  }
}

TEST(MrcFlowGate, FailActionThrowsAfterOutputIsWritten) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = violating_deck();
  spec.mrc_action = mrc::Action::kFail;

  Library lib = dense_chip(2, 1);
  try {
    run_flat_opc(lib, "top", spec);
    FAIL() << "violating deck did not throw";
  } catch (const MrcGateError& e) {
    // The rejected mask is still written for inspection.
    EXPECT_FALSE(output_polys(lib, "top", spec).empty());
    // The carried stats embed the full report and run accounting.
    EXPECT_TRUE(e.stats().mrc_checked);
    ASSERT_FALSE(e.report().clean());
    EXPECT_EQ(e.report().violations.front().rule, "gate.width");
    EXPECT_GT(e.stats().wall_ms, 0.0);
    EXPECT_NE(std::string(e.what()).find("MRC signoff"), std::string::npos);
  }
}

TEST(MrcFlowGate, WarnActionKeepsReportWithoutThrowing) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = violating_deck();
  spec.mrc_action = mrc::Action::kWarn;

  Library lib = dense_chip(2, 1);
  FlowStats stats;
  ASSERT_NO_THROW(stats = run_flat_opc(lib, "top", spec));
  EXPECT_TRUE(stats.mrc_checked);
  EXPECT_FALSE(stats.mrc.clean());

  // mrc.* metrics land in the run's snapshot.
  EXPECT_EQ(stats.metrics.counters.at(trace::metric::kMrcViolations),
            stats.mrc.violations.size());
  EXPECT_EQ(stats.metrics.counters.at(trace::metric::kMrcTilesChecked), 2u);
  EXPECT_GT(stats.metrics.gauges.at(trace::metric::kFlowPhaseMrcMs), 0.0);

  // Per-tile attribution covers every placement window; a violation
  // charged to a tile must exist in the merged report too.
  ASSERT_EQ(stats.tile_mrc_violations.size(), 2u);
  std::size_t attributed = 0;
  for (std::size_t n : stats.tile_mrc_violations) attributed += n;
  EXPECT_GE(attributed, stats.mrc.violations.size());
}

TEST(MrcFlowGate, WarnReportIdenticalAcrossJobCounts) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = violating_deck();
  spec.mrc_action = mrc::Action::kWarn;

  spec.jobs = 1;
  Library serial = dense_chip(2, 2);
  const FlowStats s1 = run_flat_opc(serial, "top", spec);
  ASSERT_FALSE(s1.mrc.clean());

  for (int jobs : {2, 8}) {
    spec.jobs = jobs;
    Library lib = dense_chip(2, 2);
    const FlowStats s = run_flat_opc(lib, "top", spec);
    EXPECT_EQ(s.mrc.violations, s1.mrc.violations) << "jobs=" << jobs;
    EXPECT_EQ(s.tile_mrc_violations, s1.tile_mrc_violations)
        << "jobs=" << jobs;
  }
}

TEST(MrcFlowGate, CellFlowChecksEachCorrectedCell) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = violating_deck();
  spec.mrc_action = mrc::Action::kWarn;

  Library lib = dense_chip(2, 2);
  const FlowStats stats = run_cell_opc(lib, "top", spec);
  EXPECT_TRUE(stats.mrc_checked);
  EXPECT_FALSE(stats.mrc.clean());
  // One corrected cell ("leaf") = one checked tile.
  EXPECT_EQ(stats.tile_mrc_violations.size(), 1u);
  EXPECT_EQ(stats.metrics.counters.at(trace::metric::kMrcTilesChecked), 1u);

  // Cell flow gates too.
  spec.mrc_action = mrc::Action::kFail;
  Library lib2 = dense_chip(2, 2);
  EXPECT_THROW(run_cell_opc(lib2, "top", spec), MrcGateError);
}

TEST(MrcFlowGate, StatsJsonEmbedsMrcBlock) {
  FlowSpec spec = fast_flow();
  spec.mrc_deck = violating_deck();
  spec.mrc_action = mrc::Action::kWarn;

  Library lib = dense_chip(2, 1);
  const FlowStats stats = run_flat_opc(lib, "top", spec);
  const std::string json = render_stats_json(stats);
  EXPECT_NE(json.find("\"mrc\":{\"checked\":true"), std::string::npos);
  EXPECT_NE(json.find("\"by_rule\":{\"gate.width\":"), std::string::npos);
  EXPECT_NE(json.find("\"tile_violations\":["), std::string::npos);

  // Gate off: the block still renders, marked unchecked.
  FlowSpec off = fast_flow();
  Library lib2 = dense_chip(2, 1);
  const FlowStats none = run_flat_opc(lib2, "top", off);
  EXPECT_FALSE(none.mrc_checked);
  EXPECT_NE(render_stats_json(none).find("\"mrc\":{\"checked\":false"),
            std::string::npos);
}

TEST(MrcFlowGate, JogWarningsNeverBlock) {
  // MRC005 maps to lint warning severity: a jog-only deck must not trip
  // the kFail action even when jogs are found (OPC staircases are
  // exactly what post-OPC masks contain).
  FlowSpec spec = fast_flow();
  spec.mrc_deck = {{mrc::CheckKind::kJog, "gate.jog", 400}};
  spec.mrc_action = mrc::Action::kFail;

  Library lib = dense_chip(2, 1);
  FlowStats stats;
  ASSERT_NO_THROW(stats = run_flat_opc(lib, "top", spec));
  EXPECT_TRUE(stats.mrc_checked);
}

}  // namespace
}  // namespace opckit::opc
