/// Feature-vector tests for the pattern library's retrieval space:
/// invariance (translation exactly, D4 through canonicalization), jitter
/// locality (small edits → small distance, different patterns → large),
/// and degenerate inputs. Runs under the sanitizer jobs in CI (label
/// `pat`).
#include <gtest/gtest.h>

#include <vector>

#include "pattern/canonical.h"
#include "pattern/feature.h"

namespace opckit::pat {
namespace {

using geom::Rect;
using geom::Region;

/// The resume-test leaf geometry: two bars, the canonical window shape
/// the flow tests exercise.
std::vector<Rect> two_bars(geom::Coord widen = 0) {
  return {Rect(0, 0, 180, 1200), Rect(540, 0, 720 + widen, 1200)};
}

Region l_pattern() {
  // Asymmetric L: no self-symmetry under D4.
  return Region{Rect(-40, -40, 40, -10)}.united(
      Region{Rect(-40, -10, -20, 40)});
}

TEST(PatternFeature, EmptyPatternIsZeroVector) {
  const PatternFeature f = feature_of({});
  EXPECT_EQ(f.norm, 0.0);
  for (double x : f.v) EXPECT_EQ(x, 0.0);
}

TEST(PatternFeature, DegenerateRectIsZeroVector) {
  // Zero-width geometry has no area to grid: the vector stays zero
  // rather than dividing by a zero cell size.
  const PatternFeature f = feature_of({Rect(0, 0, 0, 100)});
  EXPECT_EQ(f.norm, 0.0);
}

TEST(PatternFeature, TranslationInvariantExactly) {
  // The grid is anchored at the pattern bbox, so a pure translation
  // cancels in integer subtraction before any double math — the vectors
  // are bit-identical, not merely close.
  std::vector<Rect> shifted;
  for (const Rect& r : two_bars())
    shifted.push_back(Rect(r.lo.x + 1370, r.lo.y - 257, r.hi.x + 1370,
                           r.hi.y - 257));
  EXPECT_EQ(feature_of(two_bars()), feature_of(shifted));
}

TEST(PatternFeature, D4InvariantThroughCanonicalization) {
  // The library computes features over canonical rects, so every D4
  // image of a pattern maps to the identical vector.
  const Region base = l_pattern();
  const PatternFeature ref = feature_of(canonicalize(base).rects);
  for (geom::Orientation o : geom::all_orientations()) {
    EXPECT_EQ(feature_of(canonicalize(oriented(base, o)).rects), ref)
        << geom::name(o);
  }
}

TEST(PatternFeature, JitterIsNearDifferentPatternIsFar) {
  // The retrieval contract: a few-nm edge move lands within a small
  // budget, a genuinely different pattern does not.
  const PatternFeature base = feature_of(two_bars());
  const double jitter = feature_distance(base, feature_of(two_bars(4)));
  const double different =
      feature_distance(base, feature_of({Rect(0, 0, 720, 1200)}));
  EXPECT_GT(jitter, 0.0);
  EXPECT_LT(jitter, 0.5);
  EXPECT_GT(different, 1.0);
  EXPECT_LT(jitter, different);
}

TEST(PatternFeature, NormMatchesDistanceFromZero) {
  // The index's triangle-inequality pruning trusts the cached norm.
  const PatternFeature f = feature_of(two_bars());
  EXPECT_DOUBLE_EQ(f.norm, feature_distance(f, PatternFeature{}));
  EXPECT_GT(f.norm, 0.0);
}

TEST(PatternFeature, DistanceIsSymmetricAndZeroOnIdentity) {
  const PatternFeature a = feature_of(two_bars());
  const PatternFeature b = feature_of(two_bars(40));
  EXPECT_EQ(feature_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(feature_distance(a, b), feature_distance(b, a));
}

TEST(PatternFeature, FullRectFillsEveryCell) {
  const PatternFeature f = feature_of({Rect(0, 0, 600, 600)});
  for (std::size_t i = 0; i < kFeatureGrid * kFeatureGrid; ++i)
    EXPECT_NEAR(f.v[i], 1.0, 1e-12) << "cell " << i;
  // Fill-fraction scalar (last slot) is exactly 1 for a solid pattern.
  EXPECT_NEAR(f.v[kFeatureDims - 1], 1.0, 1e-12);
}

TEST(PatternFeature, DeterministicAcrossCalls) {
  const std::vector<Rect> rects = canonicalize(l_pattern()).rects;
  EXPECT_EQ(feature_of(rects), feature_of(rects));
}

}  // namespace
}  // namespace opckit::pat
