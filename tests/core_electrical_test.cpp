#include <cmath>

#include <gtest/gtest.h>

#include "core/electrical.h"

namespace opckit::opc {
namespace {

GateProfile uniform_profile(double cd, std::size_t slices = 10,
                            double w = 20.0) {
  GateProfile p;
  p.slice_width_nm = w;
  p.slice_cd_nm.assign(slices, cd);
  return p;
}

DeviceModel model() {
  DeviceModel m;
  m.nominal_length_nm = 180.0;
  m.alpha = 1.3;
  m.leakage_lambda_nm = 20.0;
  return m;
}

TEST(Electrical, UniformGateCollapsesToItsCd) {
  const GateProfile p = uniform_profile(172.0);
  EXPECT_NEAR(drive_equivalent_length(p, model()), 172.0, 1e-9);
  EXPECT_NEAR(leakage_equivalent_length(p, model()), 172.0, 1e-9);
}

TEST(Electrical, DriveLengthBelowArithmeticMean) {
  // Parallel conduction favors short slices: L_drive <= mean(L).
  GateProfile p;
  p.slice_width_nm = 20.0;
  p.slice_cd_nm = {160, 180, 200};
  const double l = drive_equivalent_length(p, model());
  EXPECT_LT(l, 180.0);
  EXPECT_GT(l, 160.0);
}

TEST(Electrical, LeakageDominatedByShortestSlice) {
  // One pinched slice sets the leakage far below the average length.
  GateProfile p;
  p.slice_width_nm = 20.0;
  p.slice_cd_nm = {180, 180, 180, 180, 180, 180, 180, 180, 180, 120};
  const double l_leak = leakage_equivalent_length(p, model());
  const double l_drive = drive_equivalent_length(p, model());
  EXPECT_LT(l_leak, l_drive);
  EXPECT_LT(l_leak, 170.0);  // pulled hard toward the 120nm slice
  EXPECT_GT(l_drive, 170.0); // drive barely notices one slice
}

TEST(Electrical, RelativeDelayAndLeakageAtNominal) {
  EXPECT_DOUBLE_EQ(relative_delay(180.0, model()), 1.0);
  EXPECT_DOUBLE_EQ(relative_leakage(180.0, model()), 1.0);
}

TEST(Electrical, ShortGateIsFasterAndLeakier) {
  const double delay = relative_delay(160.0, model());
  const double leak = relative_leakage(160.0, model());
  EXPECT_LT(delay, 1.0);
  EXPECT_GT(leak, 2.0);  // e^(20/20) ≈ 2.72
}

TEST(Electrical, IncompleteProfileRejected) {
  GateProfile p = uniform_profile(180.0);
  p.lost_slices = 1;
  EXPECT_THROW(drive_equivalent_length(p, model()), util::CheckError);
  GateProfile empty;
  empty.slice_width_nm = 20.0;
  EXPECT_THROW(leakage_equivalent_length(empty, model()),
               util::CheckError);
}

TEST(Electrical, ExtractProfileFromSyntheticImage) {
  // Vertical gate at x in [-90, 90] whose printed CD narrows linearly
  // from 180 at the bottom to 140 at the top: I = smooth line profile
  // with y-dependent half width.
  litho::Frame f;
  f.pixel_nm = 4.0;
  f.nx = 256;
  f.ny = 256;
  f.origin = {-512, -512};
  litho::Image img(f);
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    const double y = f.center_y(iy);
    const double half = 90.0 - 10.0 * (y + 200.0) / 100.0;  // 90 at y=-200
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      const double r = f.center_x(ix) / half;
      img.at(ix, iy) = 1.0 / (1.0 + r * r * r * r);
    }
  }
  // Gate spans y in [-200, 200] (width 400), width direction +y.
  const GateProfile p = extract_gate_profile(img, {0, -200}, {0, 1}, 400.0,
                                             0.5, 40.0);
  ASSERT_EQ(p.lost_slices, 0u);
  ASSERT_EQ(p.slice_cd_nm.size(), 10u);
  // CD decreases along the gate.
  EXPECT_GT(p.slice_cd_nm.front(), p.slice_cd_nm.back() + 20.0);
  EXPECT_NEAR(p.slice_cd_nm.front(), 176.0, 4.0);
  const double l_drive = drive_equivalent_length(p, model());
  const double l_leak = leakage_equivalent_length(p, model());
  EXPECT_LT(l_leak, l_drive);
}

}  // namespace
}  // namespace opckit::opc
