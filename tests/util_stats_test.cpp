#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace opckit::util {
namespace {

TEST(Accumulator, EmptyIsNeutral) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.max_abs(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.73) * 10 - 2;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Accumulator, MaxAbsTracksNegatives) {
  Accumulator a;
  a.add(-8.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 8.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Rms, KnownValue) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  std::vector<double> p{10, 20, 30};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, PositiveAndAsymmetric) {
  std::vector<double> p{90, 5, 5};
  std::vector<double> q{30, 40, 30};
  const double dpq = kl_divergence(p, q);
  const double dqp = kl_divergence(q, p);
  EXPECT_GT(dpq, 0.0);
  EXPECT_GT(dqp, 0.0);
  EXPECT_NE(dpq, dqp);
}

TEST(KlDivergence, SmoothingHandlesZeroCounts) {
  std::vector<double> p{10, 0};
  std::vector<double> q{0, 10};
  EXPECT_TRUE(std::isfinite(kl_divergence(p, q)));
}

}  // namespace
}  // namespace opckit::util
