#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/stats.h"

namespace opckit::util {
namespace {

TEST(Accumulator, EmptyIsNeutral) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.max_abs(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.73) * 10 - 2;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Accumulator, EmptyMinMaxAreDocumentedSentinels) {
  // min()/max() document +inf/-inf for the empty state; before the
  // members were default-initialized the values were indeterminate and
  // reading them was undefined behavior.
  Accumulator a;
  EXPECT_EQ(a.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(a.max(), -std::numeric_limits<double>::infinity());
}

TEST(Accumulator, MergePropertyOverRandomPartitions) {
  // Property: splitting any sample stream into consecutive chunks —
  // including EMPTY chunks, which is where a leaked sentinel would
  // surface — and merging the per-chunk accumulators matches the
  // sequential accumulator on count/mean/variance/min/max.
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(std::cos(i * 1.37) * 25 + (i % 7) - 3);
  }
  // Deterministic pseudo-random chunking (xorshift).
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 20; ++round) {
    Accumulator whole, merged;
    std::size_t pos = 0;
    while (pos <= samples.size()) {
      Accumulator chunk;  // stays empty when len == 0
      const std::size_t len = next() % 40;
      for (std::size_t k = 0; k < len && pos < samples.size(); ++k, ++pos) {
        chunk.add(samples[pos]);
        whole.add(samples[pos]);
      }
      merged.merge(chunk);
      if (pos == samples.size()) break;
    }
    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    // The sentinels never leak: the merged extrema are real samples.
    EXPECT_TRUE(std::isfinite(merged.min()));
    EXPECT_TRUE(std::isfinite(merged.max()));
  }
}

TEST(Accumulator, MergeEmptyIntoEmptyStaysEmpty) {
  Accumulator a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(a.max(), -std::numeric_limits<double>::infinity());
}

TEST(Accumulator, MaxAbsTracksNegatives) {
  Accumulator a;
  a.add(-8.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 8.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Rms, KnownValue) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Histogram, BinsAndOutOfRangeSlots) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // underflow slot, NOT clamped into bin 0
  h.add(42.0);  // overflow slot, NOT clamped into bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, BoundarySamplesLandInEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);  // x == lo: first bin
  EXPECT_EQ(h.count(0), 1u);
  // x == hi is the closed upper edge: it must land in the LAST bin, not
  // one past it (the old clamp code happened to get this right, but via
  // an out-of-range index that was clamped back — now it's the rule).
  h.add(10.0);
  EXPECT_EQ(h.count(4), 1u);
  // Just below hi stays in the last bin too.
  h.add(std::nextafter(10.0, 0.0));
  EXPECT_EQ(h.count(4), 2u);
  // Just above hi overflows.
  h.add(std::nextafter(10.0, 11.0));
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, NanSamplesAreCountedNotBinned) {
  Histogram h(0.0, 10.0, 5);
  // The old code cast (NaN * bins) to an integer — undefined behavior.
  // NaN must be classified before any cast and land in its own slot.
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.total(), 2u);
  std::size_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.count(i);
  EXPECT_EQ(binned, 1u);
}

TEST(HistogramBin, SlotCodes) {
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5, 0.0), 0);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5, 10.0), 4);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5, -0.001), kHistogramUnderflow);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5, 10.001), kHistogramOverflow);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5,
                          std::numeric_limits<double>::quiet_NaN()),
            kHistogramNan);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5,
                          std::numeric_limits<double>::infinity()),
            kHistogramOverflow);
  EXPECT_EQ(histogram_bin(0.0, 10.0, 5,
                          -std::numeric_limits<double>::infinity()),
            kHistogramUnderflow);
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  std::vector<double> p{10, 20, 30};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, PositiveAndAsymmetric) {
  std::vector<double> p{90, 5, 5};
  std::vector<double> q{30, 40, 30};
  const double dpq = kl_divergence(p, q);
  const double dqp = kl_divergence(q, p);
  EXPECT_GT(dpq, 0.0);
  EXPECT_GT(dqp, 0.0);
  EXPECT_NE(dpq, dqp);
}

TEST(KlDivergence, SmoothingHandlesZeroCounts) {
  std::vector<double> p{10, 0};
  std::vector<double> q{0, 10};
  EXPECT_TRUE(std::isfinite(kl_divergence(p, q)));
}

TEST(KlDivergence, UnsmoothedZeroCountSemanticsArePinned) {
  // p == 0 contributes nothing: the p·log p limit, never the NaN that
  // 0·log(0/q) evaluates to in floating point. D({0,10}||{5,5}) reduces
  // to 1·log(1/0.5) = log 2.
  EXPECT_NEAR(kl_divergence({0, 10}, {5, 5}, 0.0), std::log(2.0), 1e-12);
  // p > 0 where q == 0 is +infinity (P not absolutely continuous
  // w.r.t. Q), not NaN and not a crash.
  const double d = kl_divergence({10, 0}, {0, 10}, 0.0);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_GT(d, 0.0);
}

TEST(KlDivergence, RejectsNegativeSmoothing) {
  std::vector<double> p{1, 2};
  EXPECT_THROW(kl_divergence(p, p, -0.5), util::CheckError);
}

TEST(HistogramQuantile, InterpolatesUniformlyWithinBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5);  // bin 1
  h.add(2.5);  // bin 2
  // rank = p * 2 samples; count spreads uniformly across its bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.5);  // rank 0.5, half into bin 1
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);   // rank 1, top of bin 1
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);   // rank 2, top of bin 2
}

TEST(HistogramQuantile, SingleSampleMedianIsBinMidpoint) {
  Histogram h(0.0, 10.0, 1);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(HistogramQuantile, OutOfRangeMassClampsToBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);  // underflow: counted AT lo
  h.add(200.0);   // overflow: counted AT hi
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramQuantile, NanSamplesAreExcludedFromRanks) {
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(3.0);  // bin 1: [2.5, 5)
  // One non-NaN sample: p=0.5 lands halfway through its bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.75);
}

TEST(HistogramQuantile, RefusesBadInputs) {
  Histogram empty(0.0, 1.0, 4);
  EXPECT_THROW(empty.quantile(0.5), CheckError);  // no samples
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), CheckError);
  EXPECT_THROW(h.quantile(1.1), CheckError);
}

TEST(HistogramQuantile, FreeFunctionMatchesKnownCdf) {
  // 10 counts in [0,10) bin 0, 10 in bin 1: median is the bin seam.
  const std::vector<std::uint64_t> counts{10, 10};
  EXPECT_DOUBLE_EQ(histogram_quantile(0.0, 20.0, counts, 0, 0, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(0.0, 20.0, counts, 0, 0, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(0.0, 20.0, counts, 0, 0, 1.0), 20.0);
}

}  // namespace
}  // namespace opckit::util
