/// Pixel-ILT engine tests: adjoint-vs-finite-difference gradient checks
/// across process corners, sigmoid resist-proxy properties, legalizer
/// idempotence + MRC cleanliness, and the flow's jobs=1 vs jobs=8
/// byte-identity contract for ILT tiles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/flow.h"
#include "geometry/region.h"
#include "ilt/ilt.h"
#include "layout/generators.h"
#include "litho/raster.h"
#include "litho/simulator.h"
#include "mrc/mrc.h"

namespace opckit::ilt {
namespace {

/// Deterministic LCG so the "random" masks are identical on every
/// platform (no <random> distribution differences).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() % (1u << 24)) /
           static_cast<double>(1u << 24);
  }

 private:
  std::uint64_t state_;
};

litho::SimSpec calibrated_sim() {
  litho::SimSpec sim;
  sim.optics.source.grid = 5;
  sim.guard_nm = 120;  // small frames keep the FD probes fast
  litho::calibrate_threshold(sim, 180, 360);
  return sim;
}

std::vector<geom::Polygon> two_bar_target() {
  const std::vector<geom::Rect> bars = {geom::Rect(80, 40, 176, 360),
                                        geom::Rect(248, 40, 344, 360)};
  return geom::Region::from_rects(bars).polygons();
}

// ---- sigmoid resist proxy ---------------------------------------------

TEST(IltSigmoid, CenterIsHalf) { EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5); }

TEST(IltSigmoid, StrictlyMonotonicAndBounded) {
  // Strict monotonicity holds until the double rounds to exactly 0 or 1
  // (|x| ~ 37); past that the function is still weakly monotone.
  double prev = sigmoid(-30.0);
  for (double x = -29.5; x <= 30.0; x += 0.5) {
    const double z = sigmoid(x);
    EXPECT_GT(z, prev) << "x=" << x;
    EXPECT_GT(z, 0.0);
    EXPECT_LT(z, 1.0);
    prev = z;
  }
}

TEST(IltSigmoid, ExtremeArgumentsDoNotOverflow) {
  EXPECT_NEAR(sigmoid(1e4), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1e4), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(sigmoid(1e4) + sigmoid(-1e4), 1.0);
}

// ---- adjoint gradient vs central finite differences -------------------

/// Probe a handful of pixels (window and context alike — the gradient
/// contract is the full unconstrained dC/dm) and compare the adjoint
/// against (C(m+h) - C(m-h)) / 2h.
void check_adjoint(const litho::SimSpec& sim, const IltSpec& spec,
                   std::uint64_t seed) {
  const geom::Rect window(0, 0, 400, 400);
  const PixelProblem problem(two_bar_target(), sim, window, spec);
  const std::size_t n = problem.size();
  ASSERT_GT(n, 0u);

  Lcg rng(seed);
  std::vector<double> m(n);
  for (double& v : m) v = 0.2 + 0.6 * rng.uniform();

  std::vector<double> grad;
  const double c0 = problem.cost_and_gradient(m, grad);
  ASSERT_EQ(grad.size(), n);
  EXPECT_NEAR(c0, problem.cost(m), 1e-9 * (1.0 + std::abs(c0)));

  const double h = 1e-4;
  for (int probe = 0; probe < 12; ++probe) {
    const std::size_t i = rng.next() % n;
    std::vector<double> p = m;
    p[i] = m[i] + h;
    const double up = problem.cost(p);
    p[i] = m[i] - h;
    const double dn = problem.cost(p);
    const double fd = (up - dn) / (2.0 * h);
    EXPECT_NEAR(grad[i], fd, 1e-6 + 2e-3 * std::abs(fd))
        << "pixel " << i << " seed " << seed;
  }
}

TEST(IltAdjoint, MatchesFiniteDifferenceBinaryMask) {
  check_adjoint(calibrated_sim(), IltSpec{}, 1);
}

TEST(IltAdjoint, MatchesFiniteDifferenceAttenuatedPsm) {
  litho::SimSpec sim;
  sim.optics.source.grid = 5;
  sim.guard_nm = 120;
  sim.mask.type = litho::MaskType::kAttenuatedPsm;
  litho::calibrate_threshold(sim, 180, 360);
  check_adjoint(sim, IltSpec{}, 2);
}

TEST(IltAdjoint, MatchesFiniteDifferenceSteepSigmoidCorner) {
  IltSpec spec;
  spec.sigmoid_steepness = 80.0;
  spec.edge_weight = 8.0;
  spec.edge_band_nm = 16.0;
  check_adjoint(calibrated_sim(), spec, 3);
}

// ---- legalization -----------------------------------------------------

litho::Frame test_frame() {
  litho::Frame f;
  f.origin = {0, 0};
  f.pixel_nm = 8.0;
  f.nx = 128;
  f.ny = 128;
  return f;
}

/// A mask that trips every repair rule: a 40 nm gap (below min_space),
/// a 32 nm sliver (below min_width), two facing convex corners 32 nm
/// apart (below min_corner), and a 40x40 islet (below min_area).
litho::Image dirty_mask(const litho::Frame& f) {
  const std::vector<geom::Rect> rects = {
      geom::Rect(96, 96, 296, 296),    // body A
      geom::Rect(96, 336, 296, 536),   // body B: 40 nm gap to A
      geom::Rect(296, 160, 328, 240),  // 32 nm sliver off body A
      geom::Rect(328, 328, 496, 496),  // corner faces body A's NE corner
      geom::Rect(600, 600, 640, 640),  // islet below min_area
      geom::Rect(96, 640, 496, 800),   // clean anchor
  };
  return litho::rasterize(geom::Region::from_rects(rects), f);
}

TEST(IltLegalize, RepairedMaskPassesMaskDeck180) {
  const litho::Frame f = test_frame();
  const IltSpec spec;
  const geom::Rect window = f.extent();
  const geom::Region legal = legalize_mask(dirty_mask(f), window, spec);
  ASSERT_FALSE(legal.polygons().empty());

  const mrc::MrcReport report = mrc::check_mask(legal, mrc::mask_deck_180());
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations, "
                              << "first rule: "
                              << (report.violations.empty()
                                      ? ""
                                      : report.violations.front().rule);
}

TEST(IltLegalize, IdempotentThroughRasterization) {
  const litho::Frame f = test_frame();
  const IltSpec spec;
  const geom::Rect window = f.extent();
  const geom::Region once = legalize_mask(dirty_mask(f), window, spec);
  const geom::Region twice =
      legalize_mask(litho::rasterize(once, f), window, spec);
  EXPECT_EQ(once, twice);
}

TEST(IltLegalize, DropsSubMinimumAreaIslets) {
  const litho::Frame f = test_frame();
  const IltSpec spec;
  const geom::Region legal =
      legalize_mask(dirty_mask(f), f.extent(), spec);
  // The 40x40 islet at (600,600) is isolated (>= min_space from all
  // bodies) and below min_area_nm2, so no output may overlap it.
  const std::vector<geom::Rect> islet = {geom::Rect(600, 600, 640, 640)};
  EXPECT_TRUE(legal.intersected(geom::Region::from_rects(islet))
                  .polygons()
                  .empty());
}

// ---- full tile runs ---------------------------------------------------

TEST(IltRun, ImprovesCostAndStaysDeckClean) {
  const litho::SimSpec sim = calibrated_sim();
  IltSpec spec;
  spec.max_iterations = 10;
  const geom::Rect window(0, 0, 400, 400);
  const IltResult res = run_pixel_ilt(two_bar_target(), sim, window, spec);

  EXPECT_GT(res.iterations, 0);
  EXPECT_LE(res.final_cost, res.initial_cost);
  ASSERT_FALSE(res.corrected.empty());
  for (const auto& p : res.corrected) {
    EXPECT_TRUE(window.contains(p.bbox()));
  }
  const mrc::MrcReport report =
      mrc::check_polygons(res.corrected, mrc::mask_deck_180());
  EXPECT_TRUE(report.clean());
}

TEST(IltRun, ContextPolygonsPassThroughUnchanged) {
  const litho::SimSpec sim = calibrated_sim();
  IltSpec spec;
  spec.max_iterations = 4;
  const geom::Rect window(0, 0, 400, 400);

  // One polygon pokes outside the window: locked context.
  std::vector<geom::Polygon> targets = two_bar_target();
  const std::vector<geom::Rect> ctx_rects = {geom::Rect(-200, 40, -40, 360)};
  const geom::Region ctx = geom::Region::from_rects(ctx_rects);
  for (const auto& p : ctx.polygons()) targets.push_back(p);

  const IltResult res = run_pixel_ilt(targets, sim, window, spec);
  int context_seen = 0;
  for (const auto& p : res.corrected) {
    if (!window.contains(p.bbox())) {
      ++context_seen;
      EXPECT_EQ(p, ctx.polygons().front().normalized());
    }
  }
  EXPECT_EQ(context_seen, 1);
}

// ---- flow integration: determinism + escalation accounting ------------

opc::FlowSpec ilt_flow() {
  opc::FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 3;
  spec.engine = opc::CorrectionEngine::kIlt;
  spec.ilt.max_iterations = 5;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

layout::Library small_chip(int cols, int rows) {
  layout::Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

std::vector<geom::Polygon> output_polys(const layout::Library& lib,
                                        const std::string& cell,
                                        const opc::FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

TEST(IltFlow, FlatOutputIdenticalAcrossJobCounts) {
  opc::FlowSpec spec = ilt_flow();
  spec.cache = false;

  spec.jobs = 1;
  layout::Library serial = small_chip(2, 1);
  const opc::FlowStats s1 = opc::run_flat_opc(serial, "top", spec);
  const auto ref = output_polys(serial, "top", spec);
  ASSERT_FALSE(ref.empty());
  EXPECT_GT(s1.ilt_tiles, 0u);
  EXPECT_EQ(s1.ilt_escalated, 0u);  // kIlt runs every tile directly
  EXPECT_GT(s1.ilt_iterations, 0u);

  for (int jobs : {2, 8}) {
    spec.jobs = jobs;
    layout::Library lib = small_chip(2, 1);
    const opc::FlowStats s = opc::run_flat_opc(lib, "top", spec);
    EXPECT_EQ(output_polys(lib, "top", spec), ref) << "jobs=" << jobs;
    EXPECT_EQ(s.ilt_tiles, s1.ilt_tiles) << "jobs=" << jobs;
    EXPECT_EQ(s.simulations, s1.simulations) << "jobs=" << jobs;
  }
}

TEST(IltFlow, EscalationThresholdGatesIlt) {
  layout::Library relaxed_lib = small_chip(1, 1);
  opc::FlowSpec spec = ilt_flow();
  spec.cache = false;
  spec.engine = opc::CorrectionEngine::kEscalate;

  // An unreachable residual floor: model OPC gets enough iterations to
  // converge, nothing escalates, and the stats stay pure model.
  spec.opc.max_iterations = 30;
  spec.ilt_escalation_epe_nm = 1e6;
  const opc::FlowStats relaxed = opc::run_flat_opc(relaxed_lib, "top", spec);
  EXPECT_EQ(relaxed.ilt_tiles, 0u);
  EXPECT_EQ(relaxed.ilt_escalated, 0u);

  // A zero floor: any residual EPE escalates every tile (a capped,
  // unconverged model solve escalates too — kEscalate's other trigger).
  // ilt_escalated counts attempts; ilt_tiles counts tiles whose OUTPUT
  // is ILT, which can be fewer (the never-regress rule keeps the model
  // answer when the measured ILT EPE is worse).
  layout::Library strict_lib = small_chip(1, 1);
  spec.opc.max_iterations = 3;
  spec.ilt_escalation_epe_nm = 0.0;
  const opc::FlowStats strict = opc::run_flat_opc(strict_lib, "top", spec);
  EXPECT_GT(strict.ilt_escalated, 0u);
  EXPECT_LE(strict.ilt_tiles, strict.ilt_escalated);
}

}  // namespace
}  // namespace opckit::ilt
