#include <gtest/gtest.h>

#include "core/neighborhood.h"

namespace opckit::opc {
namespace {

using geom::Edge;
using geom::Polygon;
using geom::Rect;

TEST(Neighborhood, FacingRectsMeasureGap) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 1000)},
                                   Polygon{Rect(350, 0, 450, 1000)}};
  const Neighborhood hood(polys, 2000);
  // Right edge of the left rect, looking right: gap = 250.
  EXPECT_EQ(hood.space_outside(Edge({100, 0}, {100, 1000}), {1, 0}), 250);
  // Left edge of the right rect, looking left: same gap.
  EXPECT_EQ(hood.space_outside(Edge({350, 1000}, {350, 0}), {-1, 0}), 250);
}

TEST(Neighborhood, IsolatedEdgeReportsRange) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 1000)}};
  const Neighborhood hood(polys, 1500);
  EXPECT_EQ(hood.space_outside(Edge({100, 0}, {100, 1000}), {1, 0}), 1500);
  EXPECT_EQ(hood.range(), 1500);
}

TEST(Neighborhood, VerticalGapMeasured) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 1000, 100)},
                                   Polygon{Rect(0, 400, 1000, 500)}};
  const Neighborhood hood(polys, 2000);
  EXPECT_EQ(hood.space_outside(Edge({0, 100}, {1000, 100}), {0, 1}), 300);
  EXPECT_EQ(hood.space_outside(Edge({1000, 400}, {0, 400}), {0, -1}), 300);
}

TEST(Neighborhood, NonOverlappingTransverseSpanIgnored) {
  // Neighbor offset laterally so their spans don't overlap.
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)},
                                   Polygon{Rect(300, 200, 400, 300)}};
  const Neighborhood hood(polys, 1000);
  EXPECT_EQ(hood.space_outside(Edge({100, 0}, {100, 100}), {1, 0}), 1000);
}

TEST(Neighborhood, AbuttingGeometryIsZero) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)},
                                   Polygon{Rect(100, 0, 200, 100)}};
  const Neighborhood hood(polys, 1000);
  EXPECT_EQ(hood.space_outside(Edge({100, 0}, {100, 100}), {1, 0}), 0);
}

TEST(Neighborhood, OwnPolygonOtherPartsCount) {
  // U-shape: the inner faces of the U see each other.
  const Polygon u(std::vector<geom::Point>{{0, 0},
                                           {500, 0},
                                           {500, 400},
                                           {400, 400},
                                           {400, 100},
                                           {100, 100},
                                           {100, 400},
                                           {0, 400}});
  const Neighborhood hood({u.normalized()}, 1000);
  // Inner left face at x=100 looking right: gap to inner right face = 300.
  EXPECT_EQ(hood.space_outside(Edge({100, 100}, {100, 400}), {1, 0}), 300);
}

TEST(Neighborhood, CapsAtRange) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)},
                                   Polygon{Rect(5000, 0, 5100, 100)}};
  const Neighborhood hood(polys, 800);
  EXPECT_EQ(hood.space_outside(Edge({100, 0}, {100, 100}), {1, 0}), 800);
}

}  // namespace
}  // namespace opckit::opc
