/// Robustness tests for the GDSII reader against foreign-tool streams:
/// unknown records, unsupported element types, and odd-but-legal content.
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "layout/gdsii.h"
#include "util/check.h"

namespace opckit::layout {
namespace {

/// Hand-rolled GDSII record writer for crafting test streams.
class RawWriter {
 public:
  explicit RawWriter(std::ostream& os) : os_(os) {}

  void record(std::uint8_t type, std::uint8_t dtype,
              const std::vector<std::uint8_t>& payload = {}) {
    const auto len = static_cast<std::uint16_t>(payload.size() + 4);
    os_.put(static_cast<char>(len >> 8));
    os_.put(static_cast<char>(len & 0xFF));
    os_.put(static_cast<char>(type));
    os_.put(static_cast<char>(dtype));
    for (auto b : payload) os_.put(static_cast<char>(b));
  }

  void i16(std::uint8_t type, std::int16_t v) {
    record(type, 2,
           {static_cast<std::uint8_t>(static_cast<std::uint16_t>(v) >> 8),
            static_cast<std::uint8_t>(v & 0xFF)});
  }

  void ascii(std::uint8_t type, const std::string& s) {
    std::vector<std::uint8_t> p(s.begin(), s.end());
    if (p.size() % 2) p.push_back(0);
    record(type, 6, p);
  }

  void xy(const std::vector<std::pair<std::int32_t, std::int32_t>>& pts) {
    std::vector<std::uint8_t> p;
    auto put32 = [&p](std::int32_t sv) {
      const auto v = static_cast<std::uint32_t>(sv);
      p.push_back(static_cast<std::uint8_t>(v >> 24));
      p.push_back(static_cast<std::uint8_t>(v >> 16));
      p.push_back(static_cast<std::uint8_t>(v >> 8));
      p.push_back(static_cast<std::uint8_t>(v));
    };
    for (auto [x, y] : pts) {
      put32(x);
      put32(y);
    }
    record(0x10, 3, p);
  }

  void header() {
    i16(0x00, 600);                                       // HEADER
    record(0x01, 2, std::vector<std::uint8_t>(24, 0));    // BGNLIB
    ascii(0x02, "crafted");                               // LIBNAME
    record(0x03, 5, std::vector<std::uint8_t>(16, 0x40)); // UNITS (junk ok)
  }
  void begin_struct(const std::string& name) {
    record(0x05, 2, std::vector<std::uint8_t>(24, 0));  // BGNSTR
    ascii(0x06, name);                                  // STRNAME
  }
  void boundary(std::int16_t layer) {
    record(0x08, 0);    // BOUNDARY
    i16(0x0D, layer);   // LAYER
    i16(0x0E, 0);       // DATATYPE
    xy({{0, 0}, {100, 0}, {100, 100}, {0, 100}, {0, 0}});
    record(0x11, 0);    // ENDEL
  }
  void end_struct() { record(0x07, 0); }
  void end_lib() { record(0x04, 0); }

 private:
  std::ostream& os_;
};

TEST(GdsiiRobust, SkipsPathElements) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.header();
  w.begin_struct("cell");
  // A PATH element (unsupported): PATH, LAYER, DATATYPE, WIDTH, XY, ENDEL.
  w.record(0x09, 0);
  w.i16(0x0D, 5);
  w.i16(0x0E, 0);
  w.record(0x0F, 3, {0, 0, 0, 50});  // WIDTH
  w.xy({{0, 0}, {1000, 0}});
  w.record(0x11, 0);
  // Followed by a normal boundary that must survive.
  w.boundary(7);
  w.end_struct();
  w.end_lib();

  const Library lib = read_gdsii(ss);
  EXPECT_EQ(lib.at("cell").shapes(Layer{7, 0}).size(), 1u);
  EXPECT_TRUE(lib.at("cell").shapes(Layer{5, 0}).empty());
}

TEST(GdsiiRobust, SkipsTextAndNodeElements) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.header();
  w.begin_struct("cell");
  w.record(0x0C, 0);  // TEXT
  w.i16(0x0D, 1);
  w.record(0x16, 2, {0, 0});  // TEXTTYPE
  w.xy({{5, 5}});
  w.record(0x11, 0);
  w.boundary(3);
  w.end_struct();
  w.end_lib();
  const Library lib = read_gdsii(ss);
  EXPECT_EQ(lib.at("cell").shapes(Layer{3, 0}).size(), 1u);
}

TEST(GdsiiRobust, SkipsEntirelyUnknownRecords) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.header();
  w.record(0x38, 2, {0, 1});  // some extension record
  w.begin_struct("cell");
  w.boundary(2);
  w.end_struct();
  w.end_lib();
  const Library lib = read_gdsii(ss);
  EXPECT_EQ(lib.at("cell").shapes(Layer{2, 0}).size(), 1u);
}

TEST(GdsiiRobust, MissingHeaderRejected) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.begin_struct("cell");
  w.end_struct();
  w.end_lib();
  EXPECT_THROW(read_gdsii(ss), util::InputError);
}

TEST(GdsiiRobust, MissingEndlibRejected) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.header();
  w.begin_struct("cell");
  w.boundary(1);
  w.end_struct();  // but no ENDLIB
  EXPECT_THROW(read_gdsii(ss), util::InputError);
}

TEST(GdsiiRobust, BoundaryWithTooFewPointsDropped) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  RawWriter w(ss);
  w.header();
  w.begin_struct("cell");
  w.record(0x08, 0);
  w.i16(0x0D, 4);
  w.i16(0x0E, 0);
  w.xy({{0, 0}, {10, 0}, {0, 0}});  // closes to a 2-point "ring"
  w.record(0x11, 0);
  w.end_struct();
  w.end_lib();
  const Library lib = read_gdsii(ss);
  EXPECT_TRUE(lib.at("cell").shapes(Layer{4, 0}).empty());
}

TEST(GdsiiRobust, ZeroLengthRecordRejected) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  // A record claiming length 2 (< 4) is structurally invalid.
  ss.put(0);
  ss.put(2);
  ss.put(0);
  ss.put(0);
  EXPECT_THROW(read_gdsii(ss), util::InputError);
}

}  // namespace
}  // namespace opckit::layout
