#include <cmath>

#include <gtest/gtest.h>

#include "layout/generators.h"
#include "pattern/catalog.h"
#include "util/check.h"

namespace opckit::pat {
namespace {

using geom::Polygon;
using geom::Rect;

std::vector<Polygon> grating_polys(int lines, geom::Coord pitch) {
  std::vector<Polygon> out;
  for (int i = 0; i < lines; ++i) {
    out.emplace_back(Rect(i * pitch, 0, i * pitch + 180, 4000));
  }
  return out;
}

TEST(Catalog, GratingHasFewClasses) {
  // A periodic grating produces only a handful of distinct corner
  // patterns (interior vs. boundary lines, top vs. bottom corners fold
  // together under D4).
  WindowSpec spec;
  spec.radius = 400;
  const PatternCatalog cat = build_catalog(grating_polys(12, 360), spec);
  EXPECT_GT(cat.total(), 40u);
  EXPECT_LE(cat.classes(), 8u);
  EXPECT_GT(cat.classes(), 1u);
}

TEST(Catalog, TopKCoverageMonotone) {
  WindowSpec spec;
  spec.radius = 400;
  util::Rng rng(3);
  layout::Cell cell("rb");
  layout::RandomBlockSpec rb;
  rb.width = 8000;
  rb.height = 8000;
  layout::add_random_block(cell, layout::layers::kMetal1, rb, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  const PatternCatalog cat = build_catalog(
      std::vector<Polygon>(shapes.begin(), shapes.end()), spec);
  ASSERT_GT(cat.classes(), 5u);
  double prev = 0;
  for (std::size_t k = 1; k <= cat.classes(); ++k) {
    const double c = cat.coverage_top_k(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(cat.coverage_top_k(cat.classes()), 1.0, 1e-12);
  // classes_for_coverage is consistent with coverage_top_k.
  const std::size_t k90 = cat.classes_for_coverage(0.9);
  EXPECT_GE(cat.coverage_top_k(k90), 0.9);
  if (k90 > 1) EXPECT_LT(cat.coverage_top_k(k90 - 1), 0.9);
}

TEST(Catalog, RankedIsDescendingAndDeterministic) {
  WindowSpec spec;
  spec.radius = 300;
  const PatternCatalog cat = build_catalog(grating_polys(10, 360), spec);
  const auto r1 = cat.ranked();
  const auto r2 = cat.ranked();
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].pattern.hash, r2[i].pattern.hash);
    if (i > 0) EXPECT_LE(r1[i].count, r1[i - 1].count);
  }
}

TEST(Catalog, MergeAddsCounts) {
  WindowSpec spec;
  spec.radius = 300;
  PatternCatalog a = build_catalog(grating_polys(6, 360), spec);
  const PatternCatalog b = build_catalog(grating_polys(6, 360), spec);
  const std::size_t total = a.total();
  a.merge(b);
  EXPECT_EQ(a.total(), 2 * total);
  EXPECT_EQ(a.classes(), b.classes());  // same pattern population
}

TEST(Catalog, SetAlgebra) {
  WindowSpec spec;
  spec.radius = 300;
  const PatternCatalog dense = build_catalog(grating_polys(8, 360), spec);
  const PatternCatalog sparse = build_catalog(grating_polys(8, 1400), spec);
  const PatternCatalog common = dense.intersected(sparse);
  const PatternCatalog only_dense = dense.subtracted(sparse);
  EXPECT_EQ(common.classes() + only_dense.classes(), dense.classes());
  for (const auto& [hash, cls] : only_dense.by_hash()) {
    EXPECT_FALSE(sparse.contains(hash));
  }
}

TEST(Catalog, KlDivergenceSeparatesStyles) {
  WindowSpec spec;
  spec.radius = 400;
  const PatternCatalog a = build_catalog(grating_polys(10, 360), spec);
  const PatternCatalog b = build_catalog(grating_polys(10, 1400), spec);
  EXPECT_NEAR(catalog_kl_divergence(a, a), 0.0, 1e-12);
  EXPECT_GT(catalog_kl_divergence(a, b), 0.1);
}

TEST(Catalog, BuildRecordsWindowSpec) {
  WindowSpec spec;
  spec.radius = 300;
  const PatternCatalog cat = build_catalog(grating_polys(4, 360), spec);
  ASSERT_TRUE(cat.window_spec().has_value());
  EXPECT_EQ(*cat.window_spec(), spec);
}

TEST(Catalog, MergeRejectsMismatchedWindowSpec) {
  // Regression: merging catalogs extracted under different window specs
  // used to be accepted silently, though their classes were clipped at
  // different radii and could never have compared equal.
  WindowSpec s300;
  s300.radius = 300;
  WindowSpec s400;
  s400.radius = 400;
  PatternCatalog a = build_catalog(grating_polys(4, 360), s300);
  const PatternCatalog b = build_catalog(grating_polys(4, 360), s400);
  const std::size_t before = a.total();
  EXPECT_THROW(a.merge(b), util::InputError);
  EXPECT_EQ(a.total(), before);  // nothing half-merged
}

TEST(Catalog, MergeAllowsSpeclessSide) {
  // Hand-assembled catalogs (and v1 PDB files) carry no spec; merging
  // them stays allowed for backward compatibility.
  WindowSpec spec;
  spec.radius = 300;
  PatternCatalog a = build_catalog(grating_polys(4, 360), spec);
  PatternCatalog legacy;
  legacy.add(extract_windows(grating_polys(2, 360), spec));
  ASSERT_FALSE(legacy.window_spec().has_value());
  const std::size_t before = a.total();
  a.merge(legacy);
  EXPECT_EQ(a.total(), before + legacy.total());
}

TEST(Catalog, KlDivergenceEmptyAndDisjointStayPinned) {
  // Two empty catalogs: no classes, no disagreement.
  EXPECT_EQ(catalog_kl_divergence(PatternCatalog{}, PatternCatalog{}), 0.0);
  // (Near-)disjoint class populations: the Laplace smoothing over the
  // union keeps the divergence finite where the unsmoothed definition
  // would be +infinity.
  WindowSpec spec;
  spec.radius = 300;
  const PatternCatalog lines = build_catalog(grating_polys(6, 360), spec);
  const PatternCatalog square =
      build_catalog({Polygon{Rect(0, 0, 2000, 2000)}}, spec);
  const double d = catalog_kl_divergence(lines, square);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
}

TEST(Catalog, FirstAnchorIsRecorded) {
  WindowSpec spec;
  spec.radius = 300;
  const PatternCatalog cat = build_catalog(grating_polys(4, 360), spec);
  for (const auto& [hash, cls] : cat.by_hash()) {
    EXPECT_GT(cls.count, 0u);
  }
}

}  // namespace
}  // namespace opckit::pat
