#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/flow.h"
#include "layout/generators.h"
#include "lint/lint.h"

namespace opckit::lint {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using layout::Library;

bool has_code(const LintReport& r, const std::string& code) {
  return std::any_of(r.findings().begin(), r.findings().end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

layout::CellRef ref_to(const std::string& child) {
  layout::CellRef ref;
  ref.child = child;
  return ref;
}

LintReport lint_one(const Polygon& poly, const LintOptions& options = {}) {
  LintReport report;
  lint_polygon(poly, options, report);
  return report;
}

/// k-step Manhattan staircase: simple, CCW, 2k+2 vertices.
Polygon staircase(int steps) {
  std::vector<Point> ring;
  for (int i = 0; i < steps; ++i) {
    ring.push_back({10 * i, 10 * i});
    ring.push_back({10 * (i + 1), 10 * i});
  }
  ring.push_back({10 * steps, 10 * steps});
  ring.push_back({0, 10 * steps});
  return Polygon(ring);
}

// ---------------------------------------------------------------- registry

TEST(LintRegistry, AllCodesResolveAndAreDistinct) {
  std::vector<std::string> seen;
  for (const CodeInfo& info : all_codes()) {
    EXPECT_EQ(find_code(info.code), &info);
    seen.emplace_back(info.code);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_GE(seen.size(), 10u);  // the acceptance floor, with headroom
}

TEST(LintRegistry, UnknownCodeRejected) {
  EXPECT_EQ(find_code("XXX999"), nullptr);
  LintReport r;
  EXPECT_THROW(r.add("XXX999", "nope"), util::CheckError);
}

// ---------------------------------------------------------- polygon checks

TEST(LintPolygon, CleanRectHasNoFindings) {
  EXPECT_TRUE(lint_one(Polygon(Rect(0, 0, 100, 200))).empty());
}

TEST(LintPolygon, Lay001SelfIntersection) {
  // Bowtie: edges (0,0)-(100,100) and (100,0)-(0,100) cross.
  const Polygon bowtie({{0, 0}, {100, 100}, {100, 0}, {0, 100}});
  EXPECT_TRUE(has_code(lint_one(bowtie), "LAY001"));
  // Zero-width spike folding back on itself is also self-contact.
  const Polygon spike({{0, 0}, {100, 0}, {40, 0}, {40, 50}, {0, 50}});
  EXPECT_TRUE(has_code(lint_one(spike), "LAY001"));
  EXPECT_FALSE(has_code(lint_one(staircase(3)), "LAY001"));
}

TEST(LintPolygon, Lay002Degenerate) {
  EXPECT_TRUE(has_code(lint_one(Polygon(std::vector<Point>{{0, 0}, {100, 0}})), "LAY002"));
  EXPECT_TRUE(has_code(lint_one(Polygon{}), "LAY002"));
  EXPECT_FALSE(has_code(lint_one(Polygon(Rect(0, 0, 5, 5))), "LAY002"));
}

TEST(LintPolygon, Lay003ClockwiseWinding) {
  const Polygon cw({{0, 0}, {0, 100}, {100, 100}, {100, 0}});
  const LintReport r = lint_one(cw);
  EXPECT_TRUE(has_code(r, "LAY003"));
  EXPECT_EQ(r.errors(), 0u);  // advisory: normalized() repairs winding
  EXPECT_FALSE(has_code(lint_one(Polygon(Rect(0, 0, 100, 100))), "LAY003"));
}

TEST(LintPolygon, Lay004NonManhattan) {
  const Polygon tri({{0, 0}, {100, 0}, {100, 100}});
  EXPECT_TRUE(has_code(lint_one(tri), "LAY004"));
  EXPECT_FALSE(has_code(lint_one(staircase(2)), "LAY004"));
}

TEST(LintPolygon, Lay005UnnormalizedRing) {
  const Polygon collinear({{0, 0}, {50, 0}, {100, 0}, {100, 100}, {0, 100}});
  EXPECT_TRUE(has_code(lint_one(collinear), "LAY005"));
  const Polygon dup({{0, 0}, {100, 0}, {100, 0}, {100, 100}, {0, 100}});
  EXPECT_TRUE(has_code(lint_one(dup), "LAY005"));
  EXPECT_FALSE(has_code(lint_one(Polygon(Rect(0, 0, 9, 9))), "LAY005"));
}

TEST(LintPolygon, Lay006OffGridVertex) {
  LintOptions options;
  options.grid_nm = 5;
  EXPECT_TRUE(
      has_code(lint_one(Polygon(Rect(0, 0, 103, 100)), options), "LAY006"));
  EXPECT_FALSE(
      has_code(lint_one(Polygon(Rect(0, 0, 105, 100)), options), "LAY006"));
  // Grid 1 (the DB unit) disables the check entirely.
  EXPECT_TRUE(lint_one(Polygon(Rect(0, 0, 103, 100))).empty());
}

TEST(LintPolygon, Gds001VertexCapacity) {
  LintOptions options;
  options.max_gdsii_vertices = 16;
  EXPECT_TRUE(has_code(lint_one(staircase(8), options), "GDS001"));
  EXPECT_FALSE(has_code(lint_one(staircase(7), options), "GDS001"));
}

TEST(LintPolygon, Gds002CoordinateRange) {
  const geom::Coord big = geom::Coord{1} << 33;
  EXPECT_TRUE(
      has_code(lint_one(Polygon(Rect(0, 0, big, 100))), "GDS002"));
  EXPECT_FALSE(has_code(
      lint_one(Polygon(Rect(0, 0, 2147483647, 100))), "GDS002"));
}

// ---------------------------------------------------------- library checks

Library clean_library() {
  Library lib("lint_clean");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", 2, 2, {1400, 1800});
  return lib;
}

TEST(LintLibrary, CleanLibraryHasNoFindings) {
  const LintReport r = lint_library(clean_library());
  EXPECT_TRUE(r.empty()) << render_text(r);
}

TEST(LintLibrary, Hie001DanglingReference) {
  Library lib;
  lib.cell("a").add_ref(ref_to("ghost"));
  const LintReport r = lint_library(lib);
  EXPECT_TRUE(has_code(r, "HIE001"));
  EXPECT_FALSE(r.clean());
  EXPECT_FALSE(has_code(lint_library(clean_library()), "HIE001"));
}

TEST(LintLibrary, Hie002HierarchyCycle) {
  Library lib;
  lib.cell("a").add_ref(ref_to("b"));
  lib.cell("b").add_ref(ref_to("a"));
  const LintReport r = lint_library(lib);  // must terminate
  EXPECT_TRUE(has_code(r, "HIE002"));
  EXPECT_FALSE(has_code(lint_library(clean_library()), "HIE002"));
}

TEST(LintLibrary, Hie003EmptyCell) {
  Library lib;
  lib.cell("hollow");
  EXPECT_TRUE(has_code(lint_library(lib), "HIE003"));
  EXPECT_FALSE(has_code(lint_library(clean_library()), "HIE003"));
}

TEST(LintLibrary, Hie004DegenerateArray) {
  Library lib;
  lib.cell("leaf").add_rect(layout::layers::kPoly, Rect(0, 0, 10, 10));
  layout::CellRef ref = ref_to("leaf");
  ref.columns = 0;
  lib.cell("top").add_ref(ref);
  EXPECT_TRUE(has_code(lint_library(lib), "HIE004"));
  EXPECT_FALSE(has_code(lint_library(clean_library()), "HIE004"));
}

TEST(LintLibrary, Hie005LayerDatatypeDrift) {
  Library lib;
  layout::Cell& c = lib.cell("mixed");
  c.add_rect(layout::layers::kPoly, Rect(0, 0, 10, 10));
  c.add_rect(layout::layers::kPolyOpc, Rect(20, 0, 30, 10));
  const LintReport r = lint_library(lib);
  EXPECT_TRUE(has_code(r, "HIE005"));
  EXPECT_TRUE(r.clean());  // a note, not an error
  EXPECT_FALSE(has_code(lint_library(clean_library()), "HIE005"));
}

TEST(LintLibrary, Gds003CellNaming) {
  Library lib;
  lib.cell("bad name!").add_rect(layout::layers::kPoly, Rect(0, 0, 9, 9));
  EXPECT_TRUE(has_code(lint_library(lib), "GDS003"));
  Library lib2;
  lib2.cell(std::string(33, 'a'))
      .add_rect(layout::layers::kPoly, Rect(0, 0, 9, 9));
  EXPECT_TRUE(has_code(lint_library(lib2), "GDS003"));
  EXPECT_FALSE(has_code(lint_library(clean_library()), "GDS003"));
}

TEST(LintLibrary, FindingsCarryCellAndLayerContext) {
  Library lib;
  lib.cell("bow").add_polygon(layout::layers::kPoly,
                              Polygon({{0, 0}, {9, 9}, {9, 0}, {0, 9}}));
  const LintReport r = lint_library(lib);
  ASSERT_TRUE(has_code(r, "LAY001"));
  const auto it =
      std::find_if(r.findings().begin(), r.findings().end(),
                   [](const Diagnostic& d) { return d.code == "LAY001"; });
  EXPECT_EQ(it->cell, "bow");
  EXPECT_TRUE(it->has_layer);
  EXPECT_EQ(it->layer, layout::layers::kPoly);
  EXPECT_FALSE(it->where.is_empty());
}

// ------------------------------------------------------------- deck checks

opc::RuleDeck clean_deck() {
  opc::RuleDeck deck;
  deck.bias_rules = {{0, 240, 0}, {240, 480, 4}, {480, 960, 8},
                     {960, 1200, 10}};
  return deck;
}

TEST(LintDeck, CleanDeckHasNoFindings) {
  const LintReport r = lint_rule_deck(clean_deck());
  EXPECT_TRUE(r.empty()) << render_text(r);
}

TEST(LintDeck, DefaultDeckOnlyWarnsAboutForbiddenPitch) {
  // The fitted 180nm deck is non-monotonic through the forbidden-pitch
  // region — real physics, so it must stay a warning, never an error.
  const LintReport r = lint_rule_deck(opc::default_rule_deck_180());
  EXPECT_TRUE(r.clean()) << render_text(r);
  EXPECT_TRUE(has_code(r, "RUL004"));
  EXPECT_EQ(r.findings().size(), 1u);
}

TEST(LintDeck, Rul001InvalidRangeOrValue) {
  opc::RuleDeck deck = clean_deck();
  deck.bias_rules.push_back({300, 200, 2});  // inverted
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL001"));
  opc::RuleDeck deck2 = clean_deck();
  deck2.serif_size = -5;
  EXPECT_TRUE(has_code(lint_rule_deck(deck2), "RUL001"));
  EXPECT_FALSE(has_code(lint_rule_deck(clean_deck()), "RUL001"));
}

TEST(LintDeck, Rul002OverlappingRanges) {
  opc::RuleDeck deck;
  deck.bias_rules = {{0, 300, 2}, {200, 400, 4}};
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL002"));
  EXPECT_FALSE(has_code(lint_rule_deck(clean_deck()), "RUL002"));
}

TEST(LintDeck, Rul003CoverageGap) {
  opc::RuleDeck deck;
  deck.bias_rules = {{0, 200, 2}, {300, 400, 4}};
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL003"));
  EXPECT_FALSE(has_code(lint_rule_deck(clean_deck()), "RUL003"));
}

TEST(LintDeck, Rul004NonMonotonicBias) {
  opc::RuleDeck deck;
  deck.bias_rules = {{0, 100, 5}, {100, 200, 2}, {200, 300, 7}};
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL004"));
  // Monotonic in either direction is fine.
  opc::RuleDeck falling;
  falling.bias_rules = {{0, 100, 7}, {100, 200, 5}, {200, 300, 2}};
  EXPECT_FALSE(has_code(lint_rule_deck(falling), "RUL004"));
}

TEST(LintDeck, Rul005BiasMergesFacingEdges) {
  opc::RuleDeck deck;
  deck.bias_rules = {{100, 200, 60}};  // 100nm space shrinks by 120nm
  const LintReport r = lint_rule_deck(deck);
  EXPECT_TRUE(has_code(r, "RUL005"));
  EXPECT_FALSE(r.clean());
  EXPECT_FALSE(has_code(lint_rule_deck(clean_deck()), "RUL005"));
}

TEST(LintDeck, Rul006OversizedDecoration) {
  opc::RuleDeck deck = clean_deck();
  deck.serif_size = 100;  // > 180/2
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL006"));
  LintOptions coarse;
  coarse.min_feature_nm = 250;
  EXPECT_FALSE(has_code(lint_rule_deck(deck, coarse), "RUL006"));
}

TEST(LintDeck, Rul007InteractionRangeTooShort) {
  opc::RuleDeck deck = clean_deck();
  deck.bias_rules.push_back({1200, 2000, 10});
  EXPECT_TRUE(has_code(lint_rule_deck(deck), "RUL007"));
  // Open-ended upper bounds are not "largest table space".
  opc::RuleDeck open = clean_deck();
  open.bias_rules.push_back(
      {1200, std::numeric_limits<geom::Coord>::max(), 10});
  EXPECT_FALSE(has_code(lint_rule_deck(open), "RUL007"));
}

// ------------------------------------------------------------ model checks

TEST(LintModel, CleanDefaultsHaveNoFindings) {
  EXPECT_TRUE(lint_sim_spec(litho::SimSpec{}).empty());
  EXPECT_TRUE(lint_opc_spec(opc::ModelOpcSpec{}).empty());
}

TEST(LintModel, Mod001NaBand) {
  litho::SimSpec spec;
  spec.optics.na = 1.35;  // immersion: outside the scalar model
  EXPECT_TRUE(has_code(lint_sim_spec(spec), "MOD001"));
  spec.optics.na = 0.93;
  EXPECT_FALSE(has_code(lint_sim_spec(spec), "MOD001"));
}

TEST(LintModel, Mod002SigmaBand) {
  litho::SimSpec spec;
  spec.optics.source.sigma_outer = 1.4;
  EXPECT_TRUE(has_code(lint_sim_spec(spec), "MOD002"));
  litho::SimSpec annular;
  annular.optics.source.sigma_inner = 0.9;  // >= outer 0.8
  EXPECT_TRUE(has_code(lint_sim_spec(annular), "MOD002"));
  litho::SimSpec dipole;
  dipole.optics.source.shape = litho::SourceShape::kDipoleX;
  dipole.optics.source.pole_center = 0.9;
  dipole.optics.source.pole_radius = 0.3;  // pole leaves the pupil
  EXPECT_TRUE(has_code(lint_sim_spec(dipole), "MOD002"));
  EXPECT_FALSE(has_code(lint_sim_spec(litho::SimSpec{}), "MOD002"));
}

TEST(LintModel, Mod003WavelengthBand) {
  litho::SimSpec spec;
  spec.optics.wavelength_nm = 500.0;  // no production line
  const LintReport warn = lint_sim_spec(spec);
  EXPECT_TRUE(has_code(warn, "MOD003"));
  EXPECT_TRUE(warn.clean());
  spec.optics.wavelength_nm = -1.0;  // unusable, not merely unusual
  const LintReport err = lint_sim_spec(spec);
  EXPECT_TRUE(has_code(err, "MOD003"));
  EXPECT_FALSE(err.clean());
  spec.optics.wavelength_nm = 193.0;
  EXPECT_FALSE(has_code(lint_sim_spec(spec), "MOD003"));
}

TEST(LintModel, Mod004NyquistPixel) {
  litho::SimSpec spec;
  spec.pixel_nm = 60.0;  // Nyquist for the default optics is ~50.7nm
  EXPECT_TRUE(has_code(lint_sim_spec(spec), "MOD004"));
  spec.pixel_nm = 8.0;
  EXPECT_FALSE(has_code(lint_sim_spec(spec), "MOD004"));
}

TEST(LintModel, Mod005GuardBand) {
  litho::SimSpec spec;
  spec.guard_nm = 200;  // < 2*lambda/NA ~ 729nm
  const LintReport r = lint_sim_spec(spec);
  EXPECT_TRUE(has_code(r, "MOD005"));
  EXPECT_TRUE(r.clean());
  spec.guard_nm = 800;
  EXPECT_FALSE(has_code(lint_sim_spec(spec), "MOD005"));
}

TEST(LintModel, Mod006GainBand) {
  opc::ModelOpcSpec spec;
  spec.gain = 3.0;
  EXPECT_TRUE(has_code(lint_opc_spec(spec), "MOD006"));
  spec.gain = 0.0;
  EXPECT_TRUE(has_code(lint_opc_spec(spec), "MOD006"));
  spec.gain = 0.6;
  spec.corner_gain_scale = 1.5;
  EXPECT_TRUE(has_code(lint_opc_spec(spec), "MOD006"));
  EXPECT_FALSE(has_code(lint_opc_spec(opc::ModelOpcSpec{}), "MOD006"));
}

TEST(LintModel, Mod007ClampConsistency) {
  opc::ModelOpcSpec spec;
  spec.grid_nm = 4;
  spec.max_move_per_iter = 2;  // snaps every move to zero
  EXPECT_TRUE(has_code(lint_opc_spec(spec), "MOD007"));
  opc::ModelOpcSpec spec2;
  spec2.max_total_offset = 8;  // < max_move_per_iter 16
  EXPECT_TRUE(has_code(lint_opc_spec(spec2), "MOD007"));
  opc::ModelOpcSpec spec3;
  spec3.probe_range_nm = 50.0;  // cannot see a converged 90nm offset
  EXPECT_TRUE(has_code(lint_opc_spec(spec3), "MOD007"));
  opc::ModelOpcSpec spec4;
  spec4.epe_tolerance_nm = 0.0;
  EXPECT_TRUE(has_code(lint_opc_spec(spec4), "MOD007"));
  EXPECT_FALSE(has_code(lint_opc_spec(opc::ModelOpcSpec{}), "MOD007"));
}

// ------------------------------------------------------------- rendering

TEST(LintReportRender, TextAndCsvCarryCodes) {
  Library lib;
  lib.cell("a").add_ref(ref_to("ghost"));
  const LintReport r = lint_library(lib);
  const std::string text = render_text(r, "unit");
  EXPECT_NE(text.find("HIE001"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  const std::string csv = render_csv(r);
  EXPECT_NE(csv.find("code,severity"), std::string::npos);
  EXPECT_NE(csv.find("HIE001"), std::string::npos);
}

// -------------------------------------------------------- flow pre-flight

TEST(LintPreflight, FlowRefusesHierarchyCycle) {
  Library lib;
  lib.cell("a").add_rect(layout::layers::kPoly, Rect(0, 0, 180, 1000));
  lib.cell("a").add_ref(ref_to("b"));
  lib.cell("b").add_ref(ref_to("a"));
  const opc::FlowSpec spec;  // preflight on by default
  try {
    opc::run_cell_opc(lib, "a", spec);
    FAIL() << "cycle must not reach correction";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("HIE002"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("pre-flight"), std::string::npos);
  }
}

TEST(LintPreflight, FlowRefusesSelfIntersectingInput) {
  Library lib;
  lib.cell("bow").add_polygon(
      layout::layers::kPoly,
      Polygon({{0, 0}, {400, 400}, {400, 0}, {0, 400}}));
  const opc::FlowSpec spec;
  EXPECT_THROW(opc::run_flat_opc(lib, "bow", spec), util::InputError);
}

TEST(LintPreflight, FlowRefusesBadModelParameters) {
  Library lib;
  lib.cell("ok").add_rect(layout::layers::kPoly, Rect(0, 0, 180, 1000));
  opc::FlowSpec spec;
  spec.opc.gain = 5.0;
  try {
    opc::run_cell_opc(lib, "ok", spec);
    FAIL() << "diverging gain must not reach correction";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("MOD006"), std::string::npos);
  }
}

TEST(LintPreflight, GateCanBeDisabled) {
  Library lib;
  lib.cell("a").add_ref(ref_to("b"));
  lib.cell("b").add_ref(ref_to("a"));
  opc::FlowSpec spec;
  spec.preflight = false;
  // Library::validate() still refuses the cycle, via its own message.
  try {
    opc::run_cell_opc(lib, "a", spec);
    FAIL() << "validate() must still catch the cycle";
  } catch (const util::InputError& e) {
    EXPECT_EQ(std::string(e.what()).find("pre-flight"), std::string::npos);
  }
}

}  // namespace
}  // namespace opckit::lint
