#include <cmath>

#include <gtest/gtest.h>

#include "litho/litho.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

SimSpec dipole(SourceShape shape) {
  SimSpec spec;
  spec.optics.source.shape = shape;
  spec.optics.source.pole_center = 0.65;
  spec.optics.source.pole_radius = 0.2;
  return spec;
}

std::vector<geom::Polygon> grating(geom::Coord pitch, bool vertical) {
  std::vector<geom::Polygon> out;
  for (int i = -4; i <= 4; ++i) {
    const geom::Coord c = static_cast<geom::Coord>(i) * pitch;
    out.emplace_back(vertical ? Rect(c - 90, -1500, c + 90, 1500)
                              : Rect(-1500, c - 90, 1500, c + 90));
  }
  return out;
}

double modulation(const Image& lat, double on_x, double on_y, double off_x,
                  double off_y) {
  const double on = lat.sample(on_x, on_y);
  const double off = lat.sample(off_x, off_y);
  return (on - off) / (on + off);
}

TEST(Dipole, SourcePointsSitInPoles) {
  OpticalSystem sys;
  sys.source.shape = SourceShape::kDipoleX;
  sys.source.pole_center = 0.65;
  sys.source.pole_radius = 0.2;
  const auto pts = sample_source(sys);
  EXPECT_GE(pts.size(), 8u);
  const double f_na = sys.na / sys.wavelength_nm;
  for (const auto& p : pts) {
    const double u = p.fx / f_na, v = p.fy / f_na;
    const bool in_pole = std::hypot(u - 0.65, v) <= 0.2 + 1e-9 ||
                         std::hypot(u + 0.65, v) <= 0.2 + 1e-9;
    EXPECT_TRUE(in_pole) << u << ',' << v;
  }
}

TEST(Dipole, OrientationSelectivity) {
  // X-dipole: strong modulation for vertical lines, near-zero for
  // horizontal ones at a pitch whose first order only fits with the
  // matched pole offset.
  const geom::Coord pitch = 300;
  const SimSpec dx = dipole(SourceShape::kDipoleX);
  const geom::Rect window(-600, -600, 600, 600);
  const Simulator sim(dx, window);
  const Image v = sim.latent(
      Region::from_polygons(grating(pitch, true)));
  const Image h = sim.latent(
      Region::from_polygons(grating(pitch, false)));
  const double mv = modulation(v, 0, 0, pitch / 2.0, 0);
  const double mh = modulation(h, 0, 0, 0, pitch / 2.0);
  EXPECT_GT(mv, 0.4);
  EXPECT_LT(mh, 0.15);
}

TEST(Dipole, XAndYAreMirrorSymmetric) {
  const geom::Coord pitch = 300;
  const geom::Rect window(-600, -600, 600, 600);
  const Simulator sx(dipole(SourceShape::kDipoleX), window);
  const Simulator sy(dipole(SourceShape::kDipoleY), window);
  const Image vx = sx.latent(Region::from_polygons(grating(pitch, true)));
  const Image hy = sy.latent(Region::from_polygons(grating(pitch, false)));
  EXPECT_NEAR(modulation(vx, 0, 0, pitch / 2.0, 0),
              modulation(hy, 0, 0, 0, pitch / 2.0), 1e-6);
}

TEST(DoubleExposure, IntegratesBothDoses) {
  // Exposing the same mask twice at 50/50 equals one full exposure.
  SimSpec spec;
  spec.optics.source.grid = 5;
  const Region mask{Rect(-90, -1000, 90, 1000)};
  const geom::Rect window(-400, -500, 400, 500);
  const Simulator sim(spec, window);
  const Image once = sim.latent(mask);
  const Image twice =
      double_exposure_latent(spec, mask, spec, mask, window, 0.5, 0.5);
  for (std::size_t i = 0; i < once.values().size(); ++i) {
    EXPECT_NEAR(twice.values()[i], once.values()[i], 1e-9);
  }
}

TEST(DoubleExposure, DdlRecoversBothOrientations) {
  const geom::Coord pitch = 300;
  const geom::Rect window(-600, -600, 600, 600);
  const Region v = Region::from_polygons(grating(pitch, true));
  const Region h = Region::from_polygons(grating(pitch, false));
  const Image ddl = double_exposure_latent(
      dipole(SourceShape::kDipoleX), v, dipole(SourceShape::kDipoleY), h,
      window);
  // Both orientations carry modulation in the composite image (measured
  // against the deep-space point diagonal from both line sets).
  const double mv = modulation(ddl, 0, pitch / 2.0, pitch / 2.0, pitch / 2.0);
  const double mh = modulation(ddl, pitch / 2.0, 0, pitch / 2.0, pitch / 2.0);
  EXPECT_GT(mv, 0.2);
  EXPECT_GT(mh, 0.2);
}

TEST(DoubleExposure, MismatchedGridsRejected) {
  SimSpec a, b;
  b.pixel_nm = 4.0;
  const Region mask{Rect(0, 0, 100, 100)};
  EXPECT_THROW(double_exposure_latent(a, mask, b, mask,
                                      geom::Rect(-200, -200, 300, 300)),
               util::CheckError);
}

}  // namespace
}  // namespace opckit::litho
