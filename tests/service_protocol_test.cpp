/// Wire-protocol robustness suite for the opcd daemon (src/service).
///
/// Mirrors the store_result_store_test corruption-corpus style: every
/// way a frame can be malformed — truncated at any byte, wrong magic,
/// wrong version, unknown type, oversized length, corrupted payload or
/// CRC — must surface as a typed ProtocolError, never UB, unbounded
/// allocation, or a hang. The Chunk harness additionally replays every
/// conversation through 1–3-byte partial reads AND writes, so the frame
/// layer is proven correct for any legal stream chunking.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/flow_codec.h"
#include "service/protocol.h"

namespace opckit::svc {
namespace {

/// In-memory Stream: reads from a fixed buffer, appends writes.
class MemoryStream : public Stream {
 public:
  MemoryStream() = default;
  explicit MemoryStream(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}

  std::size_t read_some(void* buf, std::size_t n) override {
    const std::size_t take = std::min(n, data_.size() - pos_);
    std::memcpy(buf, data_.data() + pos_, take);
    pos_ += take;
    return take;
  }

  std::size_t write_some(const void* buf, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    written_.insert(written_.end(), p, p + n);
    return n;
  }

  const std::vector<std::uint8_t>& written() const { return written_; }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::vector<std::uint8_t> written_;
};

/// Partial-I/O injection: never moves more than `chunk` bytes per call,
/// on both the read and the write side.
class ChunkStream : public Stream {
 public:
  ChunkStream(std::vector<std::uint8_t> data, std::size_t chunk)
      : data_(std::move(data)), chunk_(chunk) {}

  std::size_t read_some(void* buf, std::size_t n) override {
    const std::size_t take =
        std::min({n, chunk_, data_.size() - pos_});
    std::memcpy(buf, data_.data() + pos_, take);
    pos_ += take;
    return take;
  }

  std::size_t write_some(const void* buf, std::size_t n) override {
    const std::size_t take = std::min(n, chunk_);
    const auto* p = static_cast<const std::uint8_t*>(buf);
    written_.insert(written_.end(), p, p + take);
    return take;
  }

  const std::vector<std::uint8_t>& written() const { return written_; }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t chunk_;
  std::vector<std::uint8_t> written_;
};

std::vector<std::uint8_t> frame_bytes(MsgType type,
                                      const std::vector<std::uint8_t>& payload) {
  MemoryStream s;
  write_frame(s, type, payload);
  return s.written();
}

WireFault fault_of(const std::vector<std::uint8_t>& bytes) {
  MemoryStream s(bytes);
  try {
    read_frame(s);
  } catch (const ProtocolError& e) {
    return e.fault();
  }
  ADD_FAILURE() << "frame unexpectedly parsed";
  return WireFault::kBadPayload;
}

opc::FlowSpec sample_spec() {
  opc::FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  spec.opc.max_iterations = 3;
  spec.halo_nm = 700;
  spec.jobs = 4;
  spec.cache_symmetry = true;
  spec.flat_context_passes = 1;
  spec.mrc_deck.push_back(
      {mrc::CheckKind::kWidth, "mrc.width.120", geom::Coord{120}});
  spec.mrc_action = mrc::Action::kWarn;
  spec.engine = opc::CorrectionEngine::kEscalate;
  spec.ilt_escalation_epe_nm = 4.5;
  spec.ilt.max_iterations = 17;
  spec.ilt.edge_weight = 2.5;
  spec.ilt.min_space_nm = 96;
  return spec;
}

SubmitMsg sample_submit() {
  SubmitMsg m;
  m.priority = -7;
  m.flow = 1;
  m.in_path = "/tmp/in.gds";
  m.out_path = "/tmp/out.gds";
  m.top = "chip_top";
  m.spec = sample_spec();
  return m;
}

// ---- happy path -------------------------------------------------------

TEST(ServiceProtocol, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  MemoryStream s(frame_bytes(MsgType::kProgress, payload));
  const auto frame = read_frame(s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kProgress);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(read_frame(s).has_value());  // clean EOF at the boundary
}

TEST(ServiceProtocol, EmptyPayloadFrame) {
  MemoryStream s(frame_bytes(MsgType::kShutdownAck, {}));
  const auto frame = read_frame(s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kShutdownAck);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(ServiceProtocol, FrameSurvivesAnyChunking) {
  const std::vector<std::uint8_t> payload(301, 0xAB);
  for (std::size_t chunk = 1; chunk <= 3; ++chunk) {
    // Partial writes: write through the chunked stream until done.
    ChunkStream w({}, chunk);
    write_frame(w, MsgType::kResult, payload);
    EXPECT_EQ(w.written(), frame_bytes(MsgType::kResult, payload));

    // Partial reads of the same bytes.
    ChunkStream r(w.written(), chunk);
    const auto frame = read_frame(r);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kResult);
    EXPECT_EQ(frame->payload, payload);
  }
}

// ---- corrupt-frame corpus ---------------------------------------------

TEST(ServiceProtocol, TruncationAtEveryByteIsTyped) {
  const auto whole = frame_bytes(MsgType::kPing, {9, 9, 9});
  for (std::size_t len = 1; len < whole.size(); ++len) {
    std::vector<std::uint8_t> cut(whole.begin(),
                                  whole.begin() + static_cast<long>(len));
    EXPECT_EQ(fault_of(cut), WireFault::kTruncated) << "prefix " << len;
  }
}

TEST(ServiceProtocol, BadMagicRejected) {
  auto bytes = frame_bytes(MsgType::kPing, {1});
  bytes[0] = 'X';
  EXPECT_EQ(fault_of(bytes), WireFault::kBadMagic);
}

TEST(ServiceProtocol, BadVersionRejected) {
  auto bytes = frame_bytes(MsgType::kPing, {1});
  bytes[4] = 0x7F;  // version lives at offset 4, little-endian
  EXPECT_EQ(fault_of(bytes), WireFault::kBadVersion);
}

TEST(ServiceProtocol, UnknownTypeRejected) {
  auto bytes = frame_bytes(MsgType::kPing, {1});
  bytes[6] = 0xEE;  // type lives at offset 6
  bytes[7] = 0x03;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadType);
}

TEST(ServiceProtocol, OversizedLengthRefusedBeforeAllocating) {
  auto bytes = frame_bytes(MsgType::kPing, {1});
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 8, &huge, 4);  // length lives at offset 8
  EXPECT_EQ(fault_of(bytes), WireFault::kOversized);
}

TEST(ServiceProtocol, CorruptPayloadFailsCrc) {
  auto bytes = frame_bytes(MsgType::kResult, {10, 20, 30, 40});
  bytes[kFrameHeaderSize + 1] ^= 0x40;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadCrc);
}

TEST(ServiceProtocol, CorruptCrcTrailerDetected) {
  auto bytes = frame_bytes(MsgType::kResult, {10, 20, 30, 40});
  bytes.back() ^= 0x01;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadCrc);
}

TEST(ServiceProtocol, ProtocolErrorIsInputError) {
  MemoryStream s(std::vector<std::uint8_t>{'X', 'X', 'X', 'X', 0, 0, 0, 0,
                                           0, 0, 0, 0});
  EXPECT_THROW(read_frame(s), util::InputError);
}

// ---- message round trips ----------------------------------------------

TEST(ServiceProtocol, SubmitRoundTripPreservesSpecAndFingerprint) {
  const SubmitMsg m = sample_submit();
  const SubmitMsg back = decode_submit(encode_submit(m));
  EXPECT_EQ(back.priority, m.priority);
  EXPECT_EQ(back.flow, m.flow);
  EXPECT_EQ(back.in_path, m.in_path);
  EXPECT_EQ(back.out_path, m.out_path);
  EXPECT_EQ(back.top, m.top);
  // The contract that makes daemon replay safe: a spec survives the wire
  // with its fingerprint intact, for both flow kinds.
  EXPECT_EQ(opc::flow_fingerprint(back.spec, "cell"),
            opc::flow_fingerprint(m.spec, "cell"));
  EXPECT_EQ(opc::flow_fingerprint(back.spec, "flat"),
            opc::flow_fingerprint(m.spec, "flat"));
  EXPECT_EQ(back.spec.jobs, m.spec.jobs);
  EXPECT_EQ(back.spec.mrc_deck.size(), m.spec.mrc_deck.size());
  EXPECT_EQ(back.spec.mrc_action, m.spec.mrc_action);
}

TEST(ServiceProtocol, FlowSpecReencodeIsByteIdentical) {
  const auto bytes = opc::encode_flow_spec(sample_spec());
  const opc::FlowSpec back =
      opc::decode_flow_spec(bytes.data(), bytes.size());
  EXPECT_EQ(opc::encode_flow_spec(back), bytes);
}

TEST(ServiceProtocol, AcceptedRejectedRoundTrip) {
  AcceptedMsg a;
  a.job_id = 0xDEADBEEFCAFE;
  a.queue_depth = 17;
  const AcceptedMsg a2 = decode_accepted(encode_accepted(a));
  EXPECT_EQ(a2.job_id, a.job_id);
  EXPECT_EQ(a2.queue_depth, a.queue_depth);

  RejectedMsg r;
  r.job_id = 42;
  r.reason = RejectReason::kQueueFull;
  r.message = "admission queue is full";
  const RejectedMsg r2 = decode_rejected(encode_rejected(r));
  EXPECT_EQ(r2.job_id, r.job_id);
  EXPECT_EQ(r2.reason, r.reason);
  EXPECT_EQ(r2.message, r.message);
}

TEST(ServiceProtocol, ProgressResultShutdownErrorRoundTrip) {
  ProgressMsg p;
  p.job_id = 7;
  p.pass = 1;
  p.phase = "solve";
  p.tiles_done = 3;
  p.tiles_total = 16;
  const ProgressMsg p2 = decode_progress(encode_progress(p));
  EXPECT_EQ(p2.phase, "solve");
  EXPECT_EQ(p2.pass, 1);
  EXPECT_EQ(p2.tiles_done, 3u);
  EXPECT_EQ(p2.tiles_total, 16u);

  ResultMsg res;
  res.job_id = 9;
  res.ok = true;
  res.payload = "{\"opc_runs\":4}";
  const ResultMsg res2 = decode_result(encode_result(res));
  EXPECT_EQ(res2.job_id, 9u);
  EXPECT_TRUE(res2.ok);
  EXPECT_EQ(res2.payload, res.payload);

  ShutdownMsg sd;
  sd.mode = ShutdownMode::kAbort;
  EXPECT_EQ(decode_shutdown(encode_shutdown(sd)).mode, ShutdownMode::kAbort);

  ErrorMsg err;
  err.code = kErrorCodeServer;
  err.message = "boom";
  const ErrorMsg err2 = decode_error(encode_error(err));
  EXPECT_EQ(err2.code, kErrorCodeServer);
  EXPECT_EQ(err2.message, "boom");
}

// ---- corrupt-payload corpus -------------------------------------------

template <typename Decoder>
void expect_every_prefix_rejected(const std::vector<std::uint8_t>& payload,
                                  Decoder decode) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::vector<std::uint8_t> cut(payload.begin(),
                                  payload.begin() + static_cast<long>(len));
    try {
      decode(cut);
      ADD_FAILURE() << "prefix of length " << len << " decoded";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::kBadPayload) << "prefix " << len;
    }
  }
}

TEST(ServiceProtocol, TruncatedPayloadsRejectedAtEveryByte) {
  expect_every_prefix_rejected(encode_accepted({12, 3}), decode_accepted);
  expect_every_prefix_rejected(encode_shutdown({ShutdownMode::kDrain}),
                               decode_shutdown);
  RejectedMsg r;
  r.job_id = 1;
  r.reason = RejectReason::kDraining;
  r.message = "drain";
  expect_every_prefix_rejected(encode_rejected(r), decode_rejected);
  expect_every_prefix_rejected(encode_submit(sample_submit()),
                               decode_submit);
}

TEST(ServiceProtocol, TrailingBytesRejected) {
  auto payload = encode_accepted({12, 3});
  payload.push_back(0);
  EXPECT_THROW(decode_accepted(payload), ProtocolError);
}

TEST(ServiceProtocol, OutOfRangeEnumsRejected) {
  // SubmitMsg.flow must be 0 or 1; it is the first byte after priority.
  auto submit = encode_submit(sample_submit());
  submit[4] = 2;
  EXPECT_THROW(decode_submit(submit), ProtocolError);

  auto shutdown = encode_shutdown({ShutdownMode::kDrain});
  shutdown[0] = 9;
  EXPECT_THROW(decode_shutdown(shutdown), ProtocolError);

  RejectedMsg r;
  r.reason = RejectReason::kBadJob;
  auto rejected = encode_rejected(r);
  rejected[8] = 0xFF;  // reason lives after the u64 job id
  EXPECT_THROW(decode_rejected(rejected), ProtocolError);
}

TEST(ServiceProtocol, HostileStringLengthRefused) {
  // A rejected payload whose string length claims ~4 GiB must be refused
  // by the bound check, not serviced with an allocation.
  std::vector<std::uint8_t> payload(8 + 2 + 4, 0);
  payload[8] = 1;                          // reason = kQueueFull
  payload[10] = 0xFF;                      // string length = 0xFFFFFFFF
  payload[11] = 0xFF;
  payload[12] = 0xFF;
  payload[13] = 0xFF;
  try {
    decode_rejected(payload);
    ADD_FAILURE() << "hostile length decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kBadPayload);
  }
}

TEST(ServiceProtocol, CorruptFlowSpecInsideSubmitRejected) {
  // Damage the embedded spec blob (its codec version halfword) — the
  // frame/CRC layer is bypassed, so the payload decoder must catch it.
  const SubmitMsg m = sample_submit();
  auto payload = encode_submit(m);
  // The spec blob is the final field; its first two bytes are the codec
  // version. Locate it from the end: blob = last (4 + spec_len) bytes.
  const auto spec_len = opc::encode_flow_spec(m.spec).size();
  const std::size_t version_at = payload.size() - spec_len;
  payload[version_at] = 0xEE;
  payload[version_at + 1] = 0xEE;
  EXPECT_THROW(decode_submit(payload), ProtocolError);
}

TEST(ServiceProtocol, WireFaultNamesAreStable) {
  EXPECT_STREQ(to_string(WireFault::kTruncated), "truncated");
  EXPECT_STREQ(to_string(WireFault::kBadCrc), "bad-crc");
  EXPECT_STREQ(to_string(RejectReason::kQueueFull), "queue-full");
  EXPECT_STREQ(to_string(RejectReason::kDraining), "draining");
}

}  // namespace
}  // namespace opckit::svc
