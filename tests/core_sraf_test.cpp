#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sraf.h"
#include "geometry/region.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;
using geom::Region;

TEST(Sraf, IsolatedLineGetsBarsBothSides) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  EXPECT_EQ(r.kept, 4u);  // 2 bars per long edge
  const Region bars = Region::from_polygons(r.bars);
  // First bar centered at bar_distance from each long edge.
  EXPECT_TRUE(bars.contains({180 + spec.bar_distance, 1500}));
  EXPECT_TRUE(bars.contains({-spec.bar_distance, 1500}));
}

TEST(Sraf, DenseGratingGetsBarsOnlyOutside) {
  SrafSpec spec;
  std::vector<Polygon> mask;
  for (int i = 0; i < 5; ++i) {
    mask.emplace_back(Rect(i * 360, 0, i * 360 + 180, 3000));
  }
  const SrafResult r = insert_srafs(mask, spec);
  // 180nm interior spaces cannot host a bar; only the two isolated outer
  // edges are assisted (2 bars each).
  EXPECT_EQ(r.kept, 4u);
  const Region bars = Region::from_polygons(r.bars);
  const Region interior{Rect(180, 0, 4 * 360, 3000)};
  EXPECT_TRUE(bars.intersected(interior).empty());
}

TEST(Sraf, SingleBarWhenSpaceIsTight) {
  SrafSpec spec;
  // Two lines whose space fits exactly one bar, not two.
  const geom::Coord space =
      spec.bar_distance * 2 + spec.bar_width + 2 * spec.min_space_to_geometry;
  const std::vector<Polygon> mask{
      Polygon{Rect(0, 0, 180, 3000)},
      Polygon{Rect(180 + space, 0, 360 + space, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  const Region bars = Region::from_polygons(r.bars);
  // Bars inside the gap exist but no second-row bars.
  EXPECT_GT(r.kept, 0u);
  for (const auto& bar : r.bars) {
    const Rect keepout_l(180, 0, 180 + spec.min_space_to_geometry, 3000);
    EXPECT_TRUE(
        Region(bar.bbox()).intersected(Region(keepout_l)).empty());
  }
}

TEST(Sraf, RespectsClearanceToAllGeometry) {
  SrafSpec spec;
  // An isolated line with a small island sitting where a bar would go.
  const std::vector<Polygon> mask{
      Polygon{Rect(0, 0, 180, 3000)},
      Polygon{Rect(180 + spec.bar_distance - 20, 1400,
                   180 + spec.bar_distance + 20, 1600)}};
  const SrafResult r = insert_srafs(mask, spec);
  const Region keepout =
      Region::from_polygons(mask).inflated(spec.min_space_to_geometry - 1);
  const Region bars = Region::from_polygons(r.bars);
  EXPECT_TRUE(bars.intersected(keepout).empty());
}

TEST(Sraf, ShortEdgesNotAssisted) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 400)}};
  const SrafResult r = insert_srafs(mask, spec);
  EXPECT_EQ(r.kept, 0u);
}

TEST(Sraf, BarsPulledInFromEnds) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  for (const auto& bar : r.bars) {
    const Rect box = bar.bbox();
    EXPECT_GE(box.lo.y, spec.end_pullin);
    EXPECT_LE(box.hi.y, 3000 - spec.end_pullin);
  }
}

// Exact width handling: every kept bar must be drawn at exactly
// bar_width across its short axis, on all four edge orientations, for
// even AND odd widths. Odd widths used to truncate to bar_width - 1.
void check_exact_widths(geom::Coord bar_width) {
  SrafSpec spec;
  spec.bar_width = bar_width;
  // A square big enough that all four edges clear min_edge_length.
  const geom::Coord side = 2000;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, side, side)}};
  const SrafResult r = insert_srafs(mask, spec);
  ASSERT_EQ(r.kept, 4u * static_cast<std::size_t>(spec.max_bars));
  const geom::Coord half_near = spec.bar_width / 2;
  // Near-face distance of each bar from its assisted edge, per side.
  std::vector<geom::Coord> lo_x, hi_x, lo_y, hi_y;
  for (const auto& bar : r.bars) {
    const Rect box = bar.bbox();
    EXPECT_EQ(std::min(box.width(), box.height()), spec.bar_width);
    if (box.hi.x <= 0) {
      lo_x.push_back(-box.hi.x);
    } else if (box.lo.x >= side) {
      hi_x.push_back(box.lo.x - side);
    } else if (box.hi.y <= 0) {
      lo_y.push_back(-box.hi.y);
    } else if (box.lo.y >= side) {
      hi_y.push_back(box.lo.y - side);
    } else {
      ADD_FAILURE() << "bar overlaps the assisted square";
    }
  }
  const std::vector<geom::Coord> want{
      spec.bar_distance - half_near,
      spec.bar_distance + spec.bar_pitch - half_near};
  for (auto* side_faces : {&lo_x, &hi_x, &lo_y, &hi_y}) {
    std::sort(side_faces->begin(), side_faces->end());
    EXPECT_EQ(*side_faces, want);
  }
}

TEST(Sraf, EvenWidthDrawnExactAllOrientations) { check_exact_widths(80); }

TEST(Sraf, OddWidthDrawnExactAllOrientations) { check_exact_widths(81); }

TEST(Sraf, OddWidthClearanceCountsFarHalf) {
  SrafSpec spec;
  spec.bar_width = 81;
  const geom::Coord half_far = spec.bar_width - spec.bar_width / 2;
  // Space that fits the first bar exactly: center distance + far half +
  // clearance. One unit less must reject the bar (the old integer-half
  // accounting accepted it and then drew into the clearance band).
  const geom::Coord fits =
      spec.bar_distance + half_far + spec.min_space_to_geometry;
  for (const geom::Coord space : {fits, fits - 1}) {
    const std::vector<Polygon> mask{
        Polygon{Rect(0, 0, 180, 3000)},
        Polygon{Rect(180 + space, 0, 360 + space, 3000)}};
    const SrafResult r = insert_srafs(mask, spec);
    const Region gap_bars = Region::from_polygons(r.bars)
                                .intersected(Region(Rect(180, 0, 180 + space, 3000)));
    if (space == fits) {
      EXPECT_FALSE(gap_bars.empty());
      // The kept gap bars still honor the clearance on both sides.
      const Region keepout =
          Region::from_polygons(mask).inflated(spec.min_space_to_geometry - 1);
      EXPECT_TRUE(gap_bars.intersected(keepout).empty());
    } else {
      EXPECT_TRUE(gap_bars.empty());
    }
  }
}

TEST(Sraf, DeterministicOutput) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)},
                                  Polygon{Rect(2000, 0, 2180, 3000)}};
  const SrafResult a = insert_srafs(mask, spec);
  const SrafResult b = insert_srafs(mask, spec);
  ASSERT_EQ(a.bars.size(), b.bars.size());
  for (std::size_t i = 0; i < a.bars.size(); ++i) {
    EXPECT_EQ(a.bars[i], b.bars[i]);
  }
}

}  // namespace
}  // namespace opckit::opc
