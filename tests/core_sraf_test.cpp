#include <gtest/gtest.h>

#include "core/sraf.h"
#include "geometry/region.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;
using geom::Region;

TEST(Sraf, IsolatedLineGetsBarsBothSides) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  EXPECT_EQ(r.kept, 4u);  // 2 bars per long edge
  const Region bars = Region::from_polygons(r.bars);
  // First bar centered at bar_distance from each long edge.
  EXPECT_TRUE(bars.contains({180 + spec.bar_distance, 1500}));
  EXPECT_TRUE(bars.contains({-spec.bar_distance, 1500}));
}

TEST(Sraf, DenseGratingGetsBarsOnlyOutside) {
  SrafSpec spec;
  std::vector<Polygon> mask;
  for (int i = 0; i < 5; ++i) {
    mask.emplace_back(Rect(i * 360, 0, i * 360 + 180, 3000));
  }
  const SrafResult r = insert_srafs(mask, spec);
  // 180nm interior spaces cannot host a bar; only the two isolated outer
  // edges are assisted (2 bars each).
  EXPECT_EQ(r.kept, 4u);
  const Region bars = Region::from_polygons(r.bars);
  const Region interior{Rect(180, 0, 4 * 360, 3000)};
  EXPECT_TRUE(bars.intersected(interior).empty());
}

TEST(Sraf, SingleBarWhenSpaceIsTight) {
  SrafSpec spec;
  // Two lines whose space fits exactly one bar, not two.
  const geom::Coord space =
      spec.bar_distance * 2 + spec.bar_width + 2 * spec.min_space_to_geometry;
  const std::vector<Polygon> mask{
      Polygon{Rect(0, 0, 180, 3000)},
      Polygon{Rect(180 + space, 0, 360 + space, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  const Region bars = Region::from_polygons(r.bars);
  // Bars inside the gap exist but no second-row bars.
  EXPECT_GT(r.kept, 0u);
  for (const auto& bar : r.bars) {
    const Rect keepout_l(180, 0, 180 + spec.min_space_to_geometry, 3000);
    EXPECT_TRUE(
        Region(bar.bbox()).intersected(Region(keepout_l)).empty());
  }
}

TEST(Sraf, RespectsClearanceToAllGeometry) {
  SrafSpec spec;
  // An isolated line with a small island sitting where a bar would go.
  const std::vector<Polygon> mask{
      Polygon{Rect(0, 0, 180, 3000)},
      Polygon{Rect(180 + spec.bar_distance - 20, 1400,
                   180 + spec.bar_distance + 20, 1600)}};
  const SrafResult r = insert_srafs(mask, spec);
  const Region keepout =
      Region::from_polygons(mask).inflated(spec.min_space_to_geometry - 1);
  const Region bars = Region::from_polygons(r.bars);
  EXPECT_TRUE(bars.intersected(keepout).empty());
}

TEST(Sraf, ShortEdgesNotAssisted) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 400)}};
  const SrafResult r = insert_srafs(mask, spec);
  EXPECT_EQ(r.kept, 0u);
}

TEST(Sraf, BarsPulledInFromEnds) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)}};
  const SrafResult r = insert_srafs(mask, spec);
  for (const auto& bar : r.bars) {
    const Rect box = bar.bbox();
    EXPECT_GE(box.lo.y, spec.end_pullin);
    EXPECT_LE(box.hi.y, 3000 - spec.end_pullin);
  }
}

TEST(Sraf, DeterministicOutput) {
  SrafSpec spec;
  const std::vector<Polygon> mask{Polygon{Rect(0, 0, 180, 3000)},
                                  Polygon{Rect(2000, 0, 2180, 3000)}};
  const SrafResult a = insert_srafs(mask, spec);
  const SrafResult b = insert_srafs(mask, spec);
  ASSERT_EQ(a.bars.size(), b.bars.size());
  for (std::size_t i = 0; i < a.bars.size(); ++i) {
    EXPECT_EQ(a.bars[i], b.bars[i]);
  }
}

}  // namespace
}  // namespace opckit::opc
