/// Property-based tests of fragmentation and offset application on random
/// rectilinear polygons (hole-free unions of random rectangle chains).
#include <map>

#include <gtest/gtest.h>

#include "core/fragment.h"
#include "geometry/region.h"
#include "util/rng.h"

namespace opckit::opc {
namespace {

using geom::Coord;
using geom::Polygon;
using geom::Rect;
using geom::Region;

/// A random connected, hole-free rectilinear polygon: a chain of
/// overlapping random rectangles (each overlaps the previous), merged.
Polygon random_staircase(util::Rng& rng, int rects = 6) {
  Region r;
  Rect prev(0, 0, rng.uniform_int(300, 900), rng.uniform_int(300, 900));
  r = Region(prev);
  for (int i = 1; i < rects; ++i) {
    // Anchor the next rect strictly inside the previous so the union
    // stays connected and hole-free.
    const Coord ax = rng.uniform_int(prev.lo.x, prev.hi.x - 100);
    const Coord ay = rng.uniform_int(prev.lo.y, prev.hi.y - 100);
    const Rect next(ax, ay, ax + rng.uniform_int(300, 900),
                    ay + rng.uniform_int(300, 900));
    r = r.united(Region(next));
    prev = next;
  }
  const auto polys = r.polygons();
  // Hole-free by construction is not guaranteed for arbitrary unions;
  // retry callers filter, but chains of overlapping rects growing up-right
  // can still enclose a pocket. Take the largest CCW ring and require the
  // others (if any) to be small; retry otherwise is handled by caller.
  const Polygon* best = nullptr;
  for (const auto& p : polys) {
    if (p.is_ccw() && (!best || p.area() > best->area())) best = &p;
  }
  return best ? *best : Polygon{};
}

FragmentationSpec spec_default() {
  FragmentationSpec s;
  return s;
}

class FragmentPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FragmentPropertyTest, FragmentsTileEveryEdge) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const Polygon poly = random_staircase(rng);
    if (poly.empty()) continue;
    const auto frags = fragment_polygon(poly, spec_default());
    std::map<std::size_t, Coord> covered;
    for (const auto& f : frags) {
      // Fragments respect min_length unless they cover an entire edge
      // that is itself shorter.
      if (f.length() < spec_default().min_length) {
        EXPECT_EQ(f.length(), poly.edge(f.edge).length());
      }
      covered[f.edge] += f.length();
    }
    for (std::size_t e = 0; e < poly.size(); ++e) {
      EXPECT_EQ(covered[e], poly.edge(e).length())
          << "edge " << e << " seed " << GetParam();
    }
  }
}

TEST_P(FragmentPropertyTest, ZeroOffsetsRoundTrip) {
  util::Rng rng(GetParam() ^ 0xf00);
  for (int trial = 0; trial < 5; ++trial) {
    const Polygon poly = random_staircase(rng);
    if (poly.empty()) continue;
    const auto frags = fragment_polygon(poly, spec_default());
    EXPECT_EQ(apply_offsets(poly, frags), poly) << "seed " << GetParam();
  }
}

TEST_P(FragmentPropertyTest, SmallUniformOffsetEqualsMinkowskiDilation) {
  // For rectilinear polygons and offsets small relative to feature size,
  // per-edge outward shift with corner re-intersection equals Minkowski
  // dilation with the square (the region-algebra oracle).
  util::Rng rng(GetParam() ^ 0xd11a);
  for (int trial = 0; trial < 5; ++trial) {
    const Polygon poly = random_staircase(rng);
    if (poly.empty()) continue;
    auto frags = fragment_polygon(poly, spec_default());
    const Coord d = 8;
    for (auto& f : frags) f.offset = d;
    const Polygon grown = apply_offsets(poly, frags);
    EXPECT_EQ(Region(grown), Region(poly).inflated(d))
        << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(FragmentPropertyTest, EvalPointsLieOnTheirEdges) {
  util::Rng rng(GetParam() ^ 0xe7a1);
  const Polygon poly = random_staircase(rng);
  if (poly.empty()) return;
  const auto frags = fragment_polygon(poly, spec_default());
  for (const auto& f : frags) {
    const geom::Point p = eval_point(poly, f);
    const geom::Edge e = poly.edge(f.edge);
    EXPECT_EQ(cross(e.delta(), p - e.a), 0);
    const Coord t = manhattan_length(p - e.a);
    EXPECT_GE(t, f.t0);
    EXPECT_LE(t, f.t1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

}  // namespace
}  // namespace opckit::opc
