#include <gtest/gtest.h>

#include "core/rules.h"
#include "geometry/region.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;
using geom::Region;

TEST(RuleDeck, LookupBias) {
  RuleDeck deck;
  deck.bias_rules = {{0, 300, -5}, {300, 600, 0}, {600, 1200, 8}};
  EXPECT_EQ(deck.lookup_bias(0), -5);
  EXPECT_EQ(deck.lookup_bias(299), -5);
  EXPECT_EQ(deck.lookup_bias(300), 0);
  EXPECT_EQ(deck.lookup_bias(700), 8);
  EXPECT_EQ(deck.lookup_bias(5000), 0);  // no rule -> no bias
}

TEST(RuleOpc, IsolatedLineGetsIsoBias) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_line_ends = false;
  deck.enable_serifs = false;
  // A very long isolated vertical line: both long edges see iso space.
  const std::vector<Polygon> targets{Polygon{Rect(0, 0, 180, 20000)}};
  const RuleOpcResult r = apply_rule_opc(targets, deck);
  ASSERT_EQ(r.corrected.size(), 1u);
  // With line-end handling off, all four edges are isolated: +8 each.
  const Rect box = r.corrected[0].bbox();
  EXPECT_EQ(box.lo.x, -10);
  EXPECT_EQ(box.hi.x, 190);
  EXPECT_EQ(box.lo.y, -10);
  EXPECT_EQ(box.hi.y, 20010);
  EXPECT_EQ(r.biased_edges, 4u);
}

TEST(RuleOpc, DenseGratingGetsNoBias) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_line_ends = false;
  deck.enable_serifs = false;
  std::vector<Polygon> targets;
  for (int i = 0; i < 7; ++i) {
    targets.emplace_back(Rect(i * 360, 0, i * 360 + 180, 20000));
  }
  const RuleOpcResult r = apply_rule_opc(targets, deck);
  // Interior lines face 180nm spaces -> dense rule, zero bias.
  Region in = Region::from_polygons(targets);
  Region out = Region::from_polygons(r.corrected);
  // Outer edges of the two boundary lines see iso space and may move;
  // check an interior line is untouched.
  EXPECT_TRUE(out.contains({360 + 90, 1000}));
  const Rect middle(3 * 360, 0, 3 * 360 + 180, 20000);
  EXPECT_EQ(out.intersected(Region(middle)), Region(middle));
}

TEST(RuleOpc, LineEndExtensionGrowsTips) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_bias = false;
  deck.enable_serifs = false;
  const std::vector<Polygon> targets{Polygon{Rect(0, 0, 180, 3000)}};
  const RuleOpcResult r = apply_rule_opc(targets, deck);
  ASSERT_EQ(r.corrected.size(), 1u);
  const Rect box = r.corrected[0].bbox();
  EXPECT_EQ(box.lo.y, -deck.line_end_extension);
  EXPECT_EQ(box.hi.y, 3000 + deck.line_end_extension);
  EXPECT_EQ(r.line_ends, 2u);
}

TEST(RuleOpc, SerifsAddVerticesAndArea) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_bias = false;
  deck.enable_line_ends = false;
  const std::vector<Polygon> targets{Polygon{Rect(0, 0, 1000, 1000)}};
  const RuleOpcResult r = apply_rule_opc(targets, deck);
  ASSERT_EQ(r.corrected.size(), 1u);
  EXPECT_EQ(r.serifs, 4u);
  EXPECT_GT(r.corrected[0].size(), 4u);
  EXPECT_GT(r.corrected[0].area(), targets[0].area());
}

TEST(RuleOpc, MousebitesCarveConcaveCorners) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_bias = false;
  deck.enable_line_ends = false;
  const Polygon l(std::vector<geom::Point>{
      {0, 0}, {2000, 0}, {2000, 400}, {400, 400}, {400, 2000}, {0, 2000}});
  const RuleOpcResult r = apply_rule_opc({l}, deck);
  EXPECT_EQ(r.mousebites, 1u);
  const Region out = Region::from_polygons(r.corrected);
  // The concave corner (400, 400) has a bite taken out of it.
  EXPECT_FALSE(out.contains({395, 395}));
}

TEST(RuleOpc, DisabledDeckIsIdentity) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_bias = false;
  deck.enable_line_ends = false;
  deck.enable_serifs = false;
  const std::vector<Polygon> targets{Polygon{Rect(0, 0, 500, 500)}};
  const RuleOpcResult r = apply_rule_opc(targets, deck);
  ASSERT_EQ(r.corrected.size(), 1u);
  EXPECT_EQ(Region::from_polygons(r.corrected), Region{Rect(0, 0, 500, 500)});
}

TEST(RuleOpc, DegenerateTargetThrows) {
  const Polygon bad(std::vector<geom::Point>{{0, 0}, {10, 0}, {20, 0}});
  EXPECT_THROW(apply_rule_opc({bad}, default_rule_deck_180()),
               util::CheckError);
}

}  // namespace
}  // namespace opckit::opc
