#include <gtest/gtest.h>

#include "core/maskdata.h"
#include "core/rules.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;

TEST(MaskData, CountsSimpleSet) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)},
                                   Polygon{Rect(200, 0, 300, 100)}};
  const MaskDataStats s = measure_mask_data(polys);
  EXPECT_EQ(s.polygons, 2u);
  EXPECT_EQ(s.vertices, 8u);
  EXPECT_EQ(s.fracture_rects, 2u);
  EXPECT_GT(s.gdsii_bytes, 100u);
  EXPECT_DOUBLE_EQ(s.vertices_per_polygon(), 4.0);
}

TEST(MaskData, EmptySetIsZero) {
  const MaskDataStats s = measure_mask_data(std::vector<Polygon>{});
  EXPECT_EQ(s.polygons, 0u);
  EXPECT_EQ(s.vertices, 0u);
  EXPECT_EQ(s.fracture_rects, 0u);
  EXPECT_DOUBLE_EQ(s.vertices_per_polygon(), 0.0);
}

TEST(MaskData, LShapeFracturesIntoTwoRects) {
  const Polygon l(std::vector<geom::Point>{
      {0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  const MaskDataStats s = measure_mask_data(std::vector<Polygon>{l});
  EXPECT_EQ(s.fracture_rects, 2u);
  EXPECT_EQ(s.vertices, 6u);
}

TEST(MaskData, OpcExplodesDataVolume) {
  // The headline effect: rule OPC with serifs multiplies vertex counts.
  std::vector<Polygon> targets;
  for (int i = 0; i < 10; ++i) {
    targets.emplace_back(Rect(i * 800, 0, i * 800 + 180, 5000));
  }
  const MaskDataStats before = measure_mask_data(targets);
  const RuleOpcResult opc = apply_rule_opc(targets, default_rule_deck_180());
  const MaskDataStats after = measure_mask_data(opc.corrected);
  const DataVolumeRatio ratio = explosion(before, after);
  EXPECT_GT(ratio.vertex_factor, 3.0);
  EXPECT_GT(ratio.fracture_factor, 2.0);
  EXPECT_GT(ratio.byte_factor, 1.5);
}

TEST(MaskData, ExplosionHandlesZeroBefore) {
  const MaskDataStats zero;
  MaskDataStats after;
  after.polygons = 5;
  const DataVolumeRatio r = explosion(zero, after);
  EXPECT_DOUBLE_EQ(r.polygon_factor, 0.0);
}

}  // namespace
}  // namespace opckit::opc
