#include <cmath>

#include <gtest/gtest.h>

#include "litho/litho.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

OpticalSystem test_optics() {
  OpticalSystem sys;
  sys.source.grid = 5;
  return sys;
}

Frame test_frame(std::size_t n = 256) {
  Frame f;
  f.pixel_nm = 8.0;
  f.nx = n;
  f.ny = n;
  f.origin = {-static_cast<geom::Coord>(n) * 4,
              -static_cast<geom::Coord>(n) * 4};
  return f;
}

MaskModel att_psm() {
  MaskModel m;
  m.type = MaskType::kAttenuatedPsm;
  m.background_transmission = 0.06;
  return m;
}

TEST(MaskModel, BackgroundAmplitude) {
  EXPECT_DOUBLE_EQ(MaskModel{}.background_amplitude(), 0.0);
  EXPECT_NEAR(att_psm().background_amplitude(), -std::sqrt(0.06), 1e-12);
}

TEST(AttPsm, ClearFieldStillOne) {
  const Frame f = test_frame(64);
  const AbbeImager imager(test_optics(), f);
  Image mask(f, 1.0);
  const Image img = imager.aerial_image(mask, 0.0, att_psm());
  for (double v : img.values()) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(AttPsm, DarkFieldLeaksBackgroundTransmission) {
  const Frame f = test_frame(64);
  const AbbeImager imager(test_optics(), f);
  Image mask(f, 0.0);
  const Image img = imager.aerial_image(mask, 0.0, att_psm());
  for (double v : img.values()) EXPECT_NEAR(v, 0.06, 1e-9);
}

TEST(AttPsm, SteepensEdgeSlopeAtDensePitch) {
  // The defining benefit: higher image log slope at the feature edge,
  // measured for each mask stack at its own calibrated threshold (the
  // PSM's dark fringe shifts the printing contour). High-sigma annular
  // illumination mutes the effect, so this is checked at the dense
  // anchor where it is robust.
  auto ils_of = [](MaskType type) {
    SimSpec spec;
    spec.optics.source.grid = 5;
    if (type == MaskType::kAttenuatedPsm) spec.mask = att_psm();
    calibrate_threshold(spec, 180, 360);
    std::vector<Rect> lines;
    for (int i = -3; i <= 3; ++i) {
      lines.emplace_back(i * 360 - 90, -2000, i * 360 + 90, 2000);
    }
    const Simulator sim(spec, Rect(-720, -600, 720, 600));
    const Image lat = sim.latent(Region::from_rects(lines));
    return image_log_slope(lat, {90, 0}, {1, 0}, 80.0, sim.threshold());
  };
  const double binary = ils_of(MaskType::kBinary);
  const double psm = ils_of(MaskType::kAttenuatedPsm);
  ASSERT_FALSE(std::isnan(binary));
  ASSERT_FALSE(std::isnan(psm));
  EXPECT_GT(psm, binary * 1.05);
}

TEST(AttPsm, SimulatorIntegration) {
  SimSpec spec;
  spec.optics.source.grid = 5;
  spec.mask = att_psm();
  const double thr = calibrate_threshold(spec, 180, 360);
  EXPECT_GT(thr, 0.05);
  EXPECT_LT(thr, 0.95);
  // Anchor prints on target with the PSM stack too.
  std::vector<Rect> lines;
  for (int i = -3; i <= 3; ++i) {
    lines.emplace_back(i * 360 - 90, -2000, i * 360 + 90, 2000);
  }
  const Simulator sim(spec, Rect(-720, -600, 720, 600));
  const Image lat = sim.latent(Region::from_rects(lines));
  EXPECT_NEAR(printed_cd(lat, {0, 0}, {1, 0}, 360.0, sim.threshold()),
              180.0, 1.5);
}

TEST(ImageLogSlope, AnalyticProfile) {
  // I(x) = 1/(1+(x/90)^4): at the 0.5 crossing (x=90),
  // ILS = |I'|/I = 4x^3/90^4 / (1/2) * ... = 2 * 4 * 90^3 / 90^4 = 8/90...
  // Derive: I' = -4x^3/90^4 * I^2; at x=90, I=0.5 -> I'/I = -4/90 * 0.5
  // = -1/45. ILS = 1/45 per nm.
  Frame f;
  f.pixel_nm = 4.0;
  f.nx = 256;
  f.ny = 32;
  f.origin = {-512, -64};
  Image img(f);
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      const double r = f.center_x(ix) / 90.0;
      img.at(ix, iy) = 1.0 / (1.0 + r * r * r * r);
    }
  }
  const double ils = image_log_slope(img, {90, 0}, {1, 0}, 40.0, 0.5);
  EXPECT_NEAR(ils, 1.0 / 45.0, 0.002);
}

TEST(ImageLogSlope, NanWithoutContour) {
  Image img(test_frame(32), 1.0);
  EXPECT_TRUE(std::isnan(image_log_slope(img, {0, 0}, {1, 0}, 50.0, 0.5)));
}

}  // namespace
}  // namespace opckit::litho
