#include <gtest/gtest.h>

#include "drc/drc.h"

namespace opckit::drc {
namespace {

using geom::Rect;
using geom::Region;

TEST(MinWidth, WideShapeClean) {
  const Region r{Rect(0, 0, 500, 500)};
  EXPECT_TRUE(check_min_width(r, 100, "w").empty());
}

TEST(MinWidth, NarrowNeckFlagged) {
  // Dumbbell: two fat pads joined by a 40nm neck; min width 100.
  const Region r = Region{Rect(0, 0, 300, 300)}
                       .united(Region{Rect(300, 130, 700, 170)})
                       .united(Region{Rect(700, 0, 1000, 300)});
  const auto v = check_min_width(r, 100, "w.100");
  ASSERT_FALSE(v.empty());
  // The violation marker sits on the neck.
  bool on_neck = false;
  for (const auto& viol : v) {
    on_neck |= viol.bbox.overlaps(Rect(300, 130, 700, 170));
  }
  EXPECT_TRUE(on_neck);
}

TEST(MinWidth, ExactWidthIsClean) {
  const Region r{Rect(0, 0, 100, 2000)};
  EXPECT_TRUE(check_min_width(r, 100, "w").empty());
  EXPECT_FALSE(check_min_width(r, 103, "w").empty());
}

TEST(MinSpace, FarShapesClean) {
  const Region r =
      Region{Rect(0, 0, 100, 100)}.united(Region{Rect(500, 0, 600, 100)});
  EXPECT_TRUE(check_min_space(r, 100, "s").empty());
}

TEST(MinSpace, CloseShapesFlagged) {
  const Region r =
      Region{Rect(0, 0, 100, 1000)}.united(Region{Rect(140, 0, 240, 1000)});
  const auto v = check_min_space(r, 100, "s.100");
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(v[0].bbox.overlaps(Rect(100, 0, 140, 1000)));
}

TEST(MinSpace, NotchWithinOneShapeFlagged) {
  // U-shape whose inner slot is 60 wide; min space 100.
  const Region r = Region{Rect(0, 0, 500, 400)}.subtracted(
      Region{Rect(220, 100, 280, 400)});
  EXPECT_FALSE(check_min_space(r, 100, "s").empty());
}

TEST(MinArea, SmallIslandFlagged) {
  const Region r =
      Region{Rect(0, 0, 1000, 1000)}.united(Region{Rect(2000, 0, 2050, 50)});
  const auto v = check_min_area(r, 10000, "a.10k");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].bbox, Rect(2000, 0, 2050, 50));
}

TEST(MinArea, HoleReducesComponentArea) {
  // 100x100 ring with a 90x90 hole: net area 1900 < 5000.
  const Region r = Region{Rect(0, 0, 100, 100)}.subtracted(
      Region{Rect(5, 5, 95, 95)});
  EXPECT_EQ(check_min_area(r, 5000, "a").size(), 1u);
  EXPECT_TRUE(check_min_area(r, 1000, "a").empty());
}

TEST(Enclosure, CoveredInnerClean) {
  const Region outer{Rect(0, 0, 500, 500)};
  const Region inner{Rect(100, 100, 400, 400)};
  EXPECT_TRUE(check_enclosure(inner, outer, 50, "enc").empty());
}

TEST(Enclosure, EdgeProximityFlagged) {
  const Region outer{Rect(0, 0, 500, 500)};
  const Region inner{Rect(20, 100, 120, 200)};  // only 20nm from the edge
  const auto v = check_enclosure(inner, outer, 50, "enc.50");
  ASSERT_FALSE(v.empty());
  EXPECT_LE(v[0].bbox.lo.x, 50);
}

TEST(MinWidth, EvenRuleParityIsExact) {
  // Regression for the half-kernel rounding bug: with an even rule the
  // kernel radius used to truncate, passing widths one below the rule.
  // Open semantics: strictly-below violates, exactly-at passes.
  for (geom::Coord rule : {geom::Coord{60}, geom::Coord{61}}) {
    for (geom::Coord w = rule - 2; w <= rule + 1; ++w) {
      const Region bar{Rect(0, 0, w, 2000)};
      EXPECT_EQ(!check_min_width(bar, rule, "w").empty(), w < rule)
          << "width " << w << " rule " << rule;
    }
  }
}

TEST(MinSpace, EvenRuleParityIsExact) {
  for (geom::Coord rule : {geom::Coord{60}, geom::Coord{61}}) {
    for (geom::Coord g = rule - 2; g <= rule + 1; ++g) {
      const Region pair = Region{Rect(0, 0, 500, 2000)}.united(
          Region{Rect(500 + g, 0, 1000 + g, 2000)});
      EXPECT_EQ(!check_min_space(pair, rule, "s").empty(), g < rule)
          << "gap " << g << " rule " << rule;
    }
  }
}

TEST(Deck, RunDeckAggregates) {
  const Region r =
      Region{Rect(0, 0, 50, 1000)}.united(Region{Rect(80, 0, 800, 1000)});
  const std::vector<Rule> deck{{RuleKind::kMinWidth, "w.60", 60},
                               {RuleKind::kMinSpace, "s.60", 60}};
  const DrcReport rep = run_deck(r, deck);
  EXPECT_EQ(rep.count("w.60"), 1u);  // 50-wide line
  EXPECT_EQ(rep.count("s.60"), 1u);  // 30 gap
  EXPECT_FALSE(rep.clean());
}

TEST(Deck, ReportsAreDeterministicAndDeduplicated) {
  // Messy multi-violation mask: two runs must produce identical,
  // duplicate-free reports (the ordering the MRC differential and the
  // signoff gate both rely on).
  const Region r = Region{Rect(0, 0, 50, 1000)}
                       .united(Region{Rect(80, 0, 800, 1000)})
                       .united(Region{Rect(900, 0, 940, 40)});
  const std::vector<Rule> deck{{RuleKind::kMinWidth, "w.60", 60},
                               {RuleKind::kMinSpace, "s.60", 60},
                               {RuleKind::kMinArea, "a.4k", 4000}};
  const DrcReport a = run_deck(r, deck);
  const DrcReport b = run_deck(r, deck);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].rule, b.violations[i].rule) << i;
    EXPECT_EQ(a.violations[i].bbox, b.violations[i].bbox) << i;
  }
  for (std::size_t i = 1; i < a.violations.size(); ++i) {
    EXPECT_FALSE(a.violations[i].rule == a.violations[i - 1].rule &&
                 a.violations[i].bbox == a.violations[i - 1].bbox)
        << "duplicate at " << i;
  }
}

TEST(Deck, MaskRuleDeckRunsClean) {
  const Region r{Rect(0, 0, 180, 2000)};
  EXPECT_TRUE(run_deck(r, mask_rule_deck_180()).clean());
}

TEST(Deck, EnclosureInDeckThrows) {
  const std::vector<Rule> deck{{RuleKind::kMinEnclosure, "enc", 10}};
  EXPECT_THROW(run_deck(Region{Rect(0, 0, 10, 10)}, deck),
               util::InputError);
}

}  // namespace
}  // namespace opckit::drc
