#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "litho/fft.h"
#include "util/check.h"
#include "util/rng.h"

namespace opckit::litho {
namespace {

TEST(Fft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(255));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(256), 256u);
  EXPECT_EQ(next_pow2(257), 512u);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<Complex> v(6);
  EXPECT_THROW(fft_1d(v, false), util::CheckError);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<Complex> v{Complex{1.5, -2.5}};
  fft_1d(v, false);
  EXPECT_EQ(v[0], (Complex{1.5, -2.5}));
  fft_1d(v, true);
  EXPECT_EQ(v[0], (Complex{1.5, -2.5}));
}

TEST(Fft, TwoDimensionalRejectsSizeMismatch) {
  std::vector<Complex> v(8);  // 8 elements cannot be a 4x4 frame
  EXPECT_THROW(fft_2d(v, 4, 4, false), util::CheckError);
  std::vector<Complex> w(12);  // right count, non-pow2 dims
  EXPECT_THROW(fft_2d(w, 3, 4, false), util::CheckError);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> v(16, Complex{0, 0});
  v[0] = 1.0;
  fft_1d(v, false);
  for (const auto& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, RoundTripRandom) {
  util::Rng rng(5);
  std::vector<Complex> v(128);
  for (auto& c : v) c = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = v;
  fft_1d(v, false);
  fft_1d(v, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * static_cast<double>(tone * i) /
                      static_cast<double>(n);
    v[i] = Complex{std::cos(ph), std::sin(ph)};
  }
  fft_1d(v, false);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(v[k]);
    if (k == tone) {
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, ParsevalHolds) {
  util::Rng rng(9);
  std::vector<Complex> v(256);
  double time_energy = 0;
  for (auto& c : v) {
    c = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(c);
  }
  fft_1d(v, false);
  double freq_energy = 0;
  for (const auto& c : v) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 256.0, 1e-8);
}

TEST(Fft, TwoDimensionalRoundTrip) {
  util::Rng rng(11);
  const std::size_t nx = 32, ny = 16;
  std::vector<Complex> v(nx * ny);
  for (auto& c : v) c = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = v;
  fft_2d(v, nx, ny, false);
  fft_2d(v, nx, ny, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, TwoDimensionalDcTerm) {
  const std::size_t nx = 8, ny = 8;
  std::vector<Complex> v(nx * ny, Complex{2.0, 0.0});
  fft_2d(v, nx, ny, false);
  EXPECT_NEAR(v[0].real(), 2.0 * nx * ny, 1e-10);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-10);
  }
}

TEST(Fft, FreqConvention) {
  EXPECT_DOUBLE_EQ(fft_freq(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(fft_freq(1, 8), 0.125);
  EXPECT_DOUBLE_EQ(fft_freq(3, 8), 0.375);
  EXPECT_DOUBLE_EQ(fft_freq(4, 8), -0.5);
  EXPECT_DOUBLE_EQ(fft_freq(7, 8), -0.125);
}

}  // namespace
}  // namespace opckit::litho
