#include <iostream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/logging.h"

namespace opckit::util {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(OPCKIT_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    OPCKIT_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OPCKIT_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("util_check_logging_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageMacroStreamsValues) {
  try {
    const int n = -3;
    OPCKIT_CHECK_MSG(n > 0, "need positive count, got " << n);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("need positive count, got -3"),
              std::string::npos);
  }
}

TEST(Check, MessageNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  OPCKIT_CHECK_MSG(true, "side effect " << count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, DcheckActiveExactlyInDebugBuilds) {
  EXPECT_NO_THROW(OPCKIT_DCHECK(true));
#ifdef NDEBUG
  EXPECT_NO_THROW(OPCKIT_DCHECK(false));
  EXPECT_NO_THROW(OPCKIT_DCHECK_MSG(false, "invisible"));
#else
  EXPECT_THROW(OPCKIT_DCHECK(false), CheckError);
  EXPECT_THROW(OPCKIT_DCHECK_MSG(false, "visible"), CheckError);
#endif
}

TEST(Check, DcheckDoesNotEvaluateConditionInRelease) {
  int evaluations = 0;
  auto probe = [&]() {
    ++evaluations;
    return true;
  };
  OPCKIT_DCHECK(probe());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);  // sizeof() keeps it type-checked, unevaluated
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Logging, EmitsAtOrAboveLevel) {
  set_log_level(LogLevel::kInfo);
  CerrCapture capture;
  OPCKIT_LOG(kInfo, "hello " << 42);
  OPCKIT_LOG(kDebug, "you should not see this");
  set_log_level(LogLevel::kInfo);
  EXPECT_NE(capture.text().find("[opckit:INFO] hello 42"),
            std::string::npos);
  EXPECT_EQ(capture.text().find("should not see"), std::string::npos);
}

TEST(Logging, LevelIsAdjustable) {
  set_log_level(LogLevel::kError);
  CerrCapture capture;
  OPCKIT_LOG(kWarn, "quiet");
  OPCKIT_LOG(kError, "loud");
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(capture.text().find("quiet"), std::string::npos);
  EXPECT_NE(capture.text().find("[opckit:ERROR] loud"), std::string::npos);
}

}  // namespace
}  // namespace opckit::util
