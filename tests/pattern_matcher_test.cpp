#include <gtest/gtest.h>

#include "pattern/matcher.h"

namespace opckit::pat {
namespace {

using geom::Polygon;
using geom::Rect;
using geom::Region;

/// The layout under test: two rect features whose facing corners create
/// a characteristic notch pattern, plus an unrelated isolated square.
std::vector<Polygon> layout_with_notch() {
  return {Polygon{Rect(0, 0, 400, 200)}, Polygon{Rect(0, 260, 400, 460)},
          Polygon{Rect(2000, 2000, 2300, 2300)}};
}

TEST(Matcher, FindsSeededPattern) {
  // Capture the pattern at the notch corner (400, 200): window-local clip
  // of the layout around that anchor.
  const auto polys = layout_with_notch();
  WindowSpec wspec;
  wspec.radius = 150;
  const auto windows = extract_windows(polys, wspec);
  const geom::Point seed{400, 200};
  const PatternWindow* target = nullptr;
  for (const auto& w : windows) {
    if (w.anchor == seed) target = &w;
  }
  ASSERT_NE(target, nullptr);

  PatternMatcher deck(150);
  deck.add_rule("hotspot.notch", target->geometry);
  ASSERT_EQ(deck.size(), 1u);

  const auto hits = deck.scan(polys);
  ASSERT_FALSE(hits.empty());
  bool at_seed = false;
  for (const auto& h : hits) {
    EXPECT_EQ(h.rule, "hotspot.notch");
    at_seed |= h.anchor == seed;
  }
  EXPECT_TRUE(at_seed);
}

TEST(Matcher, MatchesUnderD4Orientation) {
  // The deck pattern must match the same configuration rotated 90°.
  const auto polys = layout_with_notch();
  WindowSpec wspec;
  wspec.radius = 150;
  const auto windows = extract_windows(polys, wspec);
  PatternMatcher deck(150);
  for (const auto& w : windows) {
    if (w.anchor == geom::Point{400, 200}) {
      deck.add_rule("hot", w.geometry);
    }
  }
  ASSERT_EQ(deck.size(), 1u);

  // Rotate the whole layout 90 degrees.
  std::vector<Polygon> rotated;
  const geom::Transform t(geom::Orientation::kR90, {0, 0});
  for (const auto& p : polys) rotated.push_back(t(p).normalized());
  const auto hits = deck.scan(rotated);
  EXPECT_FALSE(hits.empty());
}

TEST(Matcher, NoFalsePositivesOnCleanLayout) {
  PatternMatcher deck(150);
  // Rule: a lone quarter-square corner pattern of a 40nm-offset shape
  // that does not exist in the clean layout below.
  deck.add_rule("ghost", Region{Rect(-150, -150, -40, -40)});
  const std::vector<Polygon> clean{Polygon{Rect(0, 0, 1000, 1000)}};
  EXPECT_TRUE(deck.scan(clean).empty());
}

TEST(Matcher, CatalogImportFlagsEveryKnownClass) {
  // Import the full catalog of design A as the deck; design A must then
  // hit at every corner window, and a very different design mostly not.
  const auto polys = layout_with_notch();
  WindowSpec wspec;
  wspec.radius = 150;
  const PatternCatalog cat = build_catalog(polys, wspec);
  PatternMatcher deck(150);
  deck.add_catalog(cat, "seen");
  EXPECT_EQ(deck.size(), cat.classes());
  const auto self_hits = deck.scan(polys);
  EXPECT_EQ(self_hits.size(), cat.total());
}

TEST(Matcher, RejectsBadConstruction) {
  EXPECT_THROW(PatternMatcher(0), util::CheckError);
  PatternMatcher deck(100);
  MatchRule unnamed;
  EXPECT_THROW(deck.add_rule(std::move(unnamed)), util::CheckError);
}

TEST(Matcher, AddRuleLastWinsOnHashCollision) {
  // Regression: colliding rules used to be dropped silently, leaving the
  // stale rule in the deck with no signal to the caller. Now the new
  // rule replaces the old one and the return value reports it.
  const auto polys = layout_with_notch();
  WindowSpec wspec;
  wspec.radius = 150;
  const auto windows = extract_windows(polys, wspec);
  const PatternWindow* target = nullptr;
  for (const auto& w : windows) {
    if (w.anchor == geom::Point{400, 200}) target = &w;
  }
  ASSERT_NE(target, nullptr);

  PatternMatcher deck(150);
  EXPECT_TRUE(deck.add_rule("old.name", target->geometry));
  EXPECT_FALSE(deck.add_rule("new.name", target->geometry));
  EXPECT_EQ(deck.size(), 1u);
  const auto hits = deck.scan(polys);
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits) EXPECT_EQ(h.rule, "new.name");
}

TEST(Matcher, AddCatalogRejectsMismatchedWindowSpec) {
  // Regression: a catalog built under a different extraction policy
  // imported silently and its patterns could never match a scan. The
  // catalog now carries its spec and the import validates it.
  WindowSpec wide;
  wide.radius = 300;
  const PatternCatalog cat = build_catalog(layout_with_notch(), wide);
  ASSERT_TRUE(cat.window_spec().has_value());
  PatternMatcher deck(150);
  EXPECT_THROW(deck.add_catalog(cat, "seen"), util::InputError);
  EXPECT_EQ(deck.size(), 0u);  // nothing half-imported
}

TEST(Matcher, AddCatalogAcceptsSpeclessCatalogs) {
  // Catalogs assembled window-by-window (and v1 PDB files) carry no
  // spec; importing them stays allowed for backward compatibility.
  WindowSpec wspec;
  wspec.radius = 150;
  PatternCatalog legacy;
  legacy.add(extract_windows(layout_with_notch(), wspec));
  ASSERT_FALSE(legacy.window_spec().has_value());
  PatternMatcher deck(150);
  deck.add_catalog(legacy, "legacy");
  EXPECT_EQ(deck.size(), legacy.classes());
}

}  // namespace
}  // namespace opckit::pat
