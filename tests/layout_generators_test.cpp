#include <gtest/gtest.h>

#include "geometry/region.h"
#include "layout/generators.h"

namespace opckit::layout {
namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

Region layer_region(const Cell& c, const Layer& layer) {
  const auto shapes = c.shapes(layer);
  return Region::from_polygons(
      std::vector<geom::Polygon>(shapes.begin(), shapes.end()));
}

TEST(Generators, GratingGeometry) {
  Cell c("g");
  GratingSpec spec;
  spec.line_width = 180;
  spec.pitch = 360;
  spec.lines = 7;
  spec.length = 4000;
  add_grating(c, layers::kPoly, spec);
  EXPECT_EQ(c.shapes(layers::kPoly).size(), 7u);
  // Middle line centered at x = 0.
  const Region r = layer_region(c, layers::kPoly);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_EQ(r.area(), 7 * 180 * 4000);
  // Space between lines is pitch - width.
  EXPECT_FALSE(r.contains({180 / 2 + (360 - 180) / 2, 0}));
}

TEST(Generators, IsoLineCentered) {
  Cell c("i");
  add_iso_line(c, layers::kPoly, 180, 3000);
  const Rect box = c.local_bbox();
  EXPECT_EQ(box, Rect(-90, -1500, 90, 1500));
}

TEST(Generators, LineEndCombGap) {
  Cell c("le");
  LineEndSpec spec;
  spec.gap = 260;
  add_line_end_comb(c, layers::kPoly, spec);
  const Region r = layer_region(c, layers::kPoly);
  // The design gap straddles y = 0 on the central finger.
  EXPECT_FALSE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({0, spec.gap / 2 + 10}));
  EXPECT_TRUE(r.contains({0, -spec.gap / 2 - 10}));
}

TEST(Generators, CornerTargetIsLShape) {
  Cell c("corner");
  add_corner_target(c, layers::kPoly, 200, 2000);
  ASSERT_EQ(c.shapes(layers::kPoly).size(), 1u);
  const auto& p = c.shapes(layers::kPoly)[0];
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.area(), 2000 * 200 + (2000 - 200) * 200);
}

TEST(Generators, ContactArrayCountAndPitch) {
  Cell c("ca");
  add_contact_array(c, layers::kContact, 220, 500, 4, 3);
  EXPECT_EQ(c.shapes(layers::kContact).size(), 12u);
  EXPECT_EQ(c.local_bbox(), Rect(0, 0, 3 * 500 + 220, 2 * 500 + 220));
}

TEST(Generators, LogicCellHasContent) {
  Library lib("l");
  make_logic_cell(lib, "nand2", layers::kPoly);
  const Cell& c = lib.at("nand2");
  EXPECT_GE(c.shapes(layers::kPoly).size(), 6u);
  EXPECT_FALSE(c.local_bbox().is_empty());
}

TEST(Generators, RandomBlockIsDeterministic) {
  RandomBlockSpec spec;
  util::Rng a(7), b(7);
  Cell ca("a"), cb("b");
  add_random_block(ca, layers::kMetal1, spec, a);
  add_random_block(cb, layers::kMetal1, spec, b);
  ASSERT_EQ(ca.shapes(layers::kMetal1).size(),
            cb.shapes(layers::kMetal1).size());
  for (std::size_t i = 0; i < ca.shapes(layers::kMetal1).size(); ++i) {
    EXPECT_EQ(ca.shapes(layers::kMetal1)[i], cb.shapes(layers::kMetal1)[i]);
  }
}

TEST(Generators, RandomBlockRespectsMinSpace) {
  RandomBlockSpec spec;
  util::Rng rng(11);
  Cell c("rb");
  add_random_block(c, layers::kMetal1, spec, rng);
  ASSERT_GT(c.shapes(layers::kMetal1).size(), 50u);
  // Min-space check via morphological closing: closing by just under half
  // the wire space must not add any area (no two shapes closer than space).
  const Region r = layer_region(c, layers::kMetal1);
  const Coord guard = (spec.wire_space - 2) / 2;
  EXPECT_EQ(r.closed(guard), r) << "violates min space";
}

TEST(Generators, RandomBlockStaysInExtent) {
  RandomBlockSpec spec;
  spec.width = 5000;
  spec.height = 5000;
  util::Rng rng(3);
  Cell c("rb");
  add_random_block(c, layers::kMetal1, spec, rng);
  const Rect box = c.local_bbox();
  EXPECT_GE(box.lo.x, 0);
  EXPECT_GE(box.lo.y, 0);
  EXPECT_LE(box.hi.x, spec.width);
  EXPECT_LE(box.hi.y, spec.height);
}

TEST(Generators, ChipArrayExpands) {
  Library lib("l");
  make_logic_cell(lib, "cellA", layers::kPoly);
  make_chip(lib, "chip", "cellA", 8, 4, {3000, 3600});
  lib.validate();
  const auto s = lib.stats("chip");
  EXPECT_EQ(s.placements, 32);
  EXPECT_EQ(s.distinct_cells, 2u);
  const auto flat = lib.flatten("chip", layers::kPoly);
  EXPECT_EQ(flat.size(), 32 * lib.at("cellA").shapes(layers::kPoly).size());
}

}  // namespace
}  // namespace opckit::layout
