/// Determinism and cache regression tests for the tiled flow driver.
///
/// Named FlowParallel* so tools/ci.sh can select them (with the
/// ThreadPool tests) for the thread-sanitizer job.
#include <gtest/gtest.h>

#include "core/flow.h"
#include "layout/generators.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 3;  // determinism is iteration-count agnostic
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Context-coupled chip: pitch below the halo, every window unique-ish.
Library dense_chip(int cols, int rows) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

/// Isolated chip: pitch beyond the halo, every window a translated copy.
Library sparse_chip(int cols, int rows) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {4000, 4000});
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const std::string& cell,
                                        const FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

TEST(FlowParallel, FlatOutputIdenticalAcrossJobCounts) {
  FlowSpec spec = fast_flow();
  spec.cache = false;

  spec.jobs = 1;
  Library serial = dense_chip(2, 2);
  const FlowStats s1 = run_flat_opc(serial, "top", spec);
  const auto ref = output_polys(serial, "top", spec);
  ASSERT_FALSE(ref.empty());

  for (int jobs : {2, 8, 0}) {
    spec.jobs = jobs;
    Library lib = dense_chip(2, 2);
    const FlowStats s = run_flat_opc(lib, "top", spec);
    EXPECT_EQ(output_polys(lib, "top", spec), ref) << "jobs=" << jobs;
    EXPECT_EQ(s.opc_runs, s1.opc_runs) << "jobs=" << jobs;
    EXPECT_EQ(s.simulations, s1.simulations) << "jobs=" << jobs;
    EXPECT_EQ(s.tile_simulations, s1.tile_simulations) << "jobs=" << jobs;
  }
}

TEST(FlowParallel, CellOutputIdenticalAcrossJobCounts) {
  FlowSpec spec = fast_flow();
  spec.cache = false;

  spec.jobs = 1;
  Library serial = dense_chip(3, 2);
  run_cell_opc(serial, "top", spec);
  const auto ref = output_polys(serial, "leaf", spec);
  ASSERT_FALSE(ref.empty());

  for (int jobs : {2, 8}) {
    spec.jobs = jobs;
    Library lib = dense_chip(3, 2);
    run_cell_opc(lib, "top", spec);
    EXPECT_EQ(output_polys(lib, "leaf", spec), ref) << "jobs=" << jobs;
  }
}

TEST(FlowParallel, CacheReplaySkipsSimulationOnRepeatedPlacements) {
  FlowSpec spec = fast_flow();

  spec.cache = false;
  Library cold = sparse_chip(2, 2);
  const FlowStats off = run_flat_opc(cold, "top", spec);
  EXPECT_EQ(off.cache_hits, 0u);
  EXPECT_EQ(off.opc_runs, 8u);  // 4 placements x 2 passes

  spec.cache = true;
  Library warm = sparse_chip(2, 2);
  const FlowStats on = run_flat_opc(warm, "top", spec);
  // Isolated identical placements: one representative solve, the other
  // 7 windows (3 in pass 1, all 4 in pass 2) replay.
  EXPECT_EQ(on.opc_runs, 1u);
  EXPECT_EQ(on.cache_hits, 7u);
  EXPECT_EQ(on.cache_misses, 1u);
  EXPECT_LT(on.simulations, off.simulations);
  // Per-tile accounting: only the representative simulated.
  ASSERT_EQ(on.tile_simulations.size(), 8u);
  EXPECT_GT(on.tile_simulations[0], 0u);
  for (std::size_t i = 1; i < on.tile_simulations.size(); ++i) {
    EXPECT_EQ(on.tile_simulations[i], 0u) << "tile " << i;
  }

  // Translation replay is byte-exact: cache on/off agree on geometry.
  EXPECT_EQ(output_polys(warm, "top", spec), output_polys(cold, "top", spec));
}

TEST(FlowParallel, CacheDoesNotChangeDenseChipBehavior) {
  // Context-coupled corners are D4 copies, not translations: the default
  // exact-match policy must not fire, reproducing seed behavior.
  FlowSpec spec = fast_flow();
  spec.flat_context_passes = 1;

  spec.cache = false;
  Library off_lib = dense_chip(2, 2);
  const FlowStats off = run_flat_opc(off_lib, "top", spec);

  spec.cache = true;
  Library on_lib = dense_chip(2, 2);
  const FlowStats on = run_flat_opc(on_lib, "top", spec);

  EXPECT_EQ(on.cache_hits, 0u);
  EXPECT_EQ(on.opc_runs, off.opc_runs);
  EXPECT_EQ(output_polys(on_lib, "top", spec),
            output_polys(off_lib, "top", spec));
}

TEST(FlowParallel, StatsObservability) {
  FlowSpec spec = fast_flow();
  Library lib = sparse_chip(2, 1);
  const FlowStats stats = run_flat_opc(lib, "top", spec);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_EQ(stats.tile_simulations.size(), 4u);  // 2 placements x 2 passes
  EXPECT_TRUE(stats.all_converged || stats.simulations > 0);
}

}  // namespace
}  // namespace opckit::opc
