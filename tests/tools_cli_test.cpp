#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cli.h"
#include "layout/layout.h"

namespace opckit::cli {
namespace {

/// Write a small test library to a temp GDSII file and return its path.
std::string make_test_gds(const std::string& name) {
  layout::Library lib("cli_test");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 2000));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 2000));
  layout::make_chip(lib, "top", "leaf", 2, 2, {1400, 2600});
  const std::string path = ::testing::TempDir() + "/" + name;
  layout::write_gdsii_file(lib, path);
  return path;
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsShowsUsage) {
  const auto r = run_cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  const auto r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MissingRequiredOptionRejected) {
  const auto r = run_cli({"stats"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--in"), std::string::npos);
}

TEST(Cli, MissingFileIsRuntimeError) {
  const auto r = run_cli({"stats", "--in", "/nonexistent/file.gds"});
  EXPECT_EQ(r.code, 2);  // InputError -> usage-class failure
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, StatsReportsHierarchy) {
  const std::string gds = make_test_gds("cli_stats.gds");
  const auto r = run_cli({"stats", "--in", gds});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("distinct_cells"), std::string::npos);
  EXPECT_NE(r.out.find("top_cell"), std::string::npos);
  EXPECT_NE(r.out.find("top"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, DrcCleanLayerReturnsZero) {
  const std::string gds = make_test_gds("cli_drc.gds");
  const auto r = run_cli({"drc", "--in", gds, "--layer", "10/0",
                          "--min-width", "100", "--min-space", "100"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("width.100"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, DrcViolationsReturnNonZero) {
  const std::string gds = make_test_gds("cli_drc2.gds");
  const auto r = run_cli({"drc", "--in", gds, "--layer", "10/0",
                          "--min-width", "300"});
  EXPECT_EQ(r.code, 1);  // 180nm lines violate min width 300
  EXPECT_NE(r.out.find("width.300"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, DrcWithoutRulesRejected) {
  const std::string gds = make_test_gds("cli_drc3.gds");
  const auto r = run_cli({"drc", "--in", gds, "--layer", "10/0"});
  EXPECT_EQ(r.code, 2);
  std::remove(gds.c_str());
}

TEST(Cli, BadLayerSpecRejected) {
  const std::string gds = make_test_gds("cli_layer.gds");
  const auto r = run_cli({"drc", "--in", gds, "--layer", "banana",
                          "--min-width", "10"});
  EXPECT_EQ(r.code, 2);
  std::remove(gds.c_str());
}

TEST(Cli, PatternsSummarizesCatalog) {
  const std::string gds = make_test_gds("cli_pat.gds");
  const auto r = run_cli({"patterns", "--in", gds, "--layer", "10/0",
                          "--radius", "300", "--top", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("classes over"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, RuleOpcRoundTrip) {
  const std::string in = make_test_gds("cli_opc_in.gds");
  const std::string out_path = ::testing::TempDir() + "/cli_opc_out.gds";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--mode", "rule"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Output file exists and carries shapes on datatype 1.
  const layout::Library lib = layout::read_gdsii_file(out_path);
  const auto corrected =
      lib.flatten("top", layout::Layer{10, 1});
  EXPECT_FALSE(corrected.empty());
  std::remove(in.c_str());
  std::remove(out_path.c_str());
}

TEST(Cli, ModelOpcRoundTrip) {
  // Single small cell so the model run stays quick.
  layout::Library lib("cli_model");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_model_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_model_out.gds";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--mode", "model", "--srafs"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("model OPC"), std::string::npos);
  EXPECT_NE(r.out.find("SRAF"), std::string::npos);
  const layout::Library back = layout::read_gdsii_file(out_path);
  EXPECT_FALSE(back.flatten("only", layout::Layer{10, 1}).empty());
  std::remove(in.c_str());
  std::remove(out_path.c_str());
}

TEST(Cli, FlatFlowOpcRoundTrip) {
  // Single small cell so the two-pass flow stays quick.
  layout::Library lib("cli_flow");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_flow_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_flow_out.gds";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--flow", "flat", "--jobs", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("flat flow:"), std::string::npos);
  EXPECT_NE(r.out.find("cache:"), std::string::npos);
  EXPECT_NE(r.out.find("wall clock:"), std::string::npos);
  const layout::Library back = layout::read_gdsii_file(out_path);
  EXPECT_FALSE(back.flatten("only", layout::Layer{10, 1}).empty());
  std::remove(in.c_str());
  std::remove(out_path.c_str());
}

TEST(Cli, FlowStoreResumeAndJsonStats) {
  layout::Library lib("cli_store");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_store_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_store_out.gds";
  const std::string store = ::testing::TempDir() + "/cli_store.ocs";
  const std::string stats_path = ::testing::TempDir() + "/cli_store.json";
  std::remove(store.c_str());

  // Cold run writes the store; --stats json replaces the text report.
  const auto cold = run_cli({"opc", "--in", in, "--out", out_path,
                             "--layer", "10/0", "--flow", "flat",
                             "--store", store, "--stats", "json"});
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_EQ(cold.out.rfind("{\"opc_runs\":", 0), 0u) << cold.out;
  EXPECT_NE(cold.out.find("\"store\":{\"hits\":0,\"entries_loaded\":0,"
                          "\"entries_appended\":"),
            std::string::npos)
      << cold.out;

  // Resume replays everything; --stats-out writes the same JSON to disk.
  const auto warm = run_cli({"opc", "--in", in, "--out", out_path,
                             "--layer", "10/0", "--flow", "flat",
                             "--store", store, "--resume",
                             "--stats-out", stats_path});
  EXPECT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("store:"), std::string::npos) << warm.out;
  std::ifstream stats_file(stats_path);
  std::string json((std::istreambuf_iterator<char>(stats_file)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"opc_runs\":0,", 0), 0u) << json;
  EXPECT_NE(json.find("\"entries_appended\":0"), std::string::npos) << json;

  std::remove(in.c_str());
  std::remove(out_path.c_str());
  std::remove(store.c_str());
  std::remove(stats_path.c_str());
}

TEST(Cli, FlowTraceWritesChromeTraceJson) {
  layout::Library lib("cli_trace");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_trace_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_trace_out.gds";
  const std::string trace_path = ::testing::TempDir() + "/cli_trace.json";

  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--flow", "flat", "--jobs", "2",
                          "--trace", trace_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote trace to"), std::string::npos) << r.out;

  std::ifstream trace_file(trace_path);
  std::string json((std::istreambuf_iterator<char>(trace_file)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 60);
  EXPECT_NE(json.find("\"name\":\"flow.flat\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flow.solve.tile\""), std::string::npos);

  std::remove(in.c_str());
  std::remove(out_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, StatsJsonEmbedsTheMetricsSnapshot) {
  layout::Library lib("cli_metrics");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_metrics_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path =
      ::testing::TempDir() + "/cli_metrics_out.gds";

  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--flow", "flat", "--stats", "json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"metrics\":{\"counters\":{"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"litho.fft2d_transforms\":"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"flow.phase.solve_ms\":"), std::string::npos)
      << r.out;

  std::remove(in.c_str());
  std::remove(out_path.c_str());
}

TEST(Cli, MetricsCommandListsTheRegistry) {
  const auto text = run_cli({"metrics"});
  EXPECT_EQ(text.code, 0) << text.err;
  EXPECT_NE(text.out.find("flow.tiles_merged"), std::string::npos);
  EXPECT_NE(text.out.find("litho.raster_cells"), std::string::npos);

  const auto md = run_cli({"metrics", "--format", "md"});
  EXPECT_EQ(md.code, 0) << md.err;
  EXPECT_EQ(md.out.rfind("# opckit metric registry", 0), 0u);
  EXPECT_NE(md.out.find("| `store.recovered_tail_bytes` | counter |"),
            std::string::npos);

  const auto bad = run_cli({"metrics", "--format", "yaml"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("--format"), std::string::npos);
}

TEST(Cli, StoreFlagsRequireAFlow) {
  for (const std::vector<std::string>& extra :
       {std::vector<std::string>{"--store", "x.ocs"},
        std::vector<std::string>{"--stats", "json"},
        std::vector<std::string>{"--stats-out", "x.json"},
        std::vector<std::string>{"--trace", "x.json"}}) {
    std::vector<std::string> args{"opc",     "--in",  "x.gds", "--out",
                                  "y.gds",   "--layer", "10/0"};
    args.insert(args.end(), extra.begin(), extra.end());
    const auto r = run_cli(args);
    EXPECT_EQ(r.code, 2) << extra[0];
    EXPECT_NE(r.err.find("--flow flat|cell"), std::string::npos)
        << r.err;
  }
}

TEST(Cli, ResumeRequiresStore) {
  const auto r = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                          "--layer", "10/0", "--flow", "flat", "--resume"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--resume requires --store"), std::string::npos);
}

TEST(Cli, UnknownStatsFormatRejected) {
  const auto r = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                          "--layer", "10/0", "--flow", "flat", "--stats",
                          "xml"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--stats"), std::string::npos);
}

TEST(Cli, FlowRequiresModelMode) {
  const auto r = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                          "--layer", "10/0", "--mode", "rule", "--flow",
                          "flat"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--mode model"), std::string::npos);
}

TEST(Cli, MrcCleanLayerReturnsZero) {
  const std::string gds = make_test_gds("cli_mrc.gds");
  const auto r = run_cli({"mrc", "--in", gds, "--layer", "10/0",
                          "--min-width", "100", "--min-space", "100"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mrc.width.100"), std::string::npos);
  EXPECT_NE(r.out.find("MRC001"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, MrcViolationsReturnOneWithWitnesses) {
  const std::string gds = make_test_gds("cli_mrc2.gds");
  const auto r = run_cli({"mrc", "--in", gds, "--layer", "10/0",
                          "--min-width", "200"});
  EXPECT_EQ(r.code, 1);  // 180nm lines violate min width 200
  EXPECT_NE(r.out.find("mrc.width.200"), std::string::npos);
  EXPECT_NE(r.out.find("measured 180"), std::string::npos) << r.out;
  std::remove(gds.c_str());
}

TEST(Cli, MrcDefaultDeckRunsClean) {
  const std::string gds = make_test_gds("cli_mrc3.gds");
  const auto r = run_cli({"mrc", "--in", gds, "--layer", "10/0",
                          "--deck", "default"});
  EXPECT_EQ(r.code, 0) << r.err << r.out;
  std::remove(gds.c_str());
}

TEST(Cli, MrcWithoutRulesRejected) {
  const std::string gds = make_test_gds("cli_mrc4.gds");
  const auto r = run_cli({"mrc", "--in", gds, "--layer", "10/0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--min-"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, FlowMrcGateWarnEmbedsReportInJsonStats) {
  layout::Library lib("cli_mrc_flow");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_mrc_flow_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_mrc_flow_out.gds";

  // A deck this corrected mask can never meet, downgraded to warn: the
  // run succeeds, the JSON stats carry the violation counts.
  const std::string deck = ::testing::TempDir() + "/cli_mrc_flow.deck";
  std::ofstream(deck) << "width 500\n";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--flow", "flat", "--mrc-deck", deck,
                          "--mrc-action", "warn", "--stats", "json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"mrc\":{\"checked\":true"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"by_rule\":{\"mrc.width.500\":"), std::string::npos)
      << r.out;

  std::remove(in.c_str());
  std::remove(out_path.c_str());
  std::remove(deck.c_str());
}

TEST(Cli, FlowMrcGateFailRejectsButWritesOutput) {
  layout::Library lib("cli_mrc_gate");
  lib.cell("only").add_rect(layout::layers::kPoly,
                            geom::Rect(0, 0, 180, 1500));
  const std::string in = ::testing::TempDir() + "/cli_mrc_gate_in.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_mrc_gate_out.gds";

  const std::string deck = ::testing::TempDir() + "/cli_mrc_gate.deck";
  std::ofstream(deck) << "width 500\n";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--flow", "flat", "--mrc-deck", deck});
  EXPECT_EQ(r.code, 1) << r.err;
  EXPECT_NE(r.out.find("MRC001"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("error: MRC signoff"), std::string::npos) << r.out;
  // The rejected mask is still written for inspection.
  const layout::Library back = layout::read_gdsii_file(out_path);
  EXPECT_FALSE(back.flatten("only", layout::Layer{10, 1}).empty());

  std::remove(in.c_str());
  std::remove(out_path.c_str());
  std::remove(deck.c_str());
}

TEST(Cli, MrcFlagsValidated) {
  // --mrc-action needs --mrc-deck.
  const auto r = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                          "--layer", "10/0", "--flow", "flat",
                          "--mrc-action", "warn"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--mrc-action requires --mrc-deck"),
            std::string::npos);
  // Unknown action value.
  const auto r2 = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                           "--layer", "10/0", "--flow", "flat",
                           "--mrc-deck", "default", "--mrc-action", "x"});
  EXPECT_EQ(r2.code, 2);
  EXPECT_NE(r2.err.find("--mrc-action"), std::string::npos);
  // The gate is a flow feature; the direct path rejects it.
  const auto r3 = run_cli({"opc", "--in", "x.gds", "--out", "y.gds",
                           "--layer", "10/0", "--mode", "model",
                           "--mrc-deck", "default"});
  EXPECT_EQ(r3.code, 2);
  EXPECT_NE(r3.err.find("--flow flat|cell"), std::string::npos);
}

TEST(Cli, LintCleanLayoutReturnsZero) {
  const std::string gds = make_test_gds("cli_lint_clean.gds");
  const auto r = run_cli({"lint", "--in", gds});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("0 finding(s)"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, LintDirtyLayoutReturnsOneWithCodes) {
  layout::Library lib("dirty");
  lib.cell("bow").add_polygon(
      layout::layers::kPoly,
      geom::Polygon({{0, 0}, {400, 400}, {400, 0}, {0, 400}}));
  layout::CellRef orphan_ref;
  orphan_ref.child = "ghost";
  lib.cell("orphan").add_ref(orphan_ref);
  const std::string gds = ::testing::TempDir() + "/cli_lint_dirty.gds";
  layout::write_gdsii_file(lib, gds);
  const auto r = run_cli({"lint", "--in", gds});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("LAY001"), std::string::npos);
  EXPECT_NE(r.out.find("HIE001"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, LintCsvFormatIsMachineReadable) {
  layout::Library lib("dirty_csv");
  lib.cell("bow").add_polygon(
      layout::layers::kPoly,
      geom::Polygon({{0, 0}, {400, 400}, {400, 0}, {0, 400}}));
  const std::string gds = ::testing::TempDir() + "/cli_lint_csv.gds";
  layout::write_gdsii_file(lib, gds);
  const auto r = run_cli({"lint", "--in", gds, "--format", "csv"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("code,severity"), std::string::npos);
  EXPECT_NE(r.out.find("LAY001,error"), std::string::npos);
  std::remove(gds.c_str());
}

TEST(Cli, LintCodesListsTheRegistry) {
  const auto r = run_cli({"lint", "--codes"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LAY001"), std::string::npos);
  EXPECT_NE(r.out.find("RUL004"), std::string::npos);
  EXPECT_NE(r.out.find("MOD007"), std::string::npos);
}

TEST(Cli, LintCodesMarkdownRendersTheRegistry) {
  const auto r = run_cli({"lint", "--codes", "--format", "md"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.rfind("# opclint diagnostic codes", 0), 0u);
  EXPECT_NE(r.out.find("| LAY001 | error |"), std::string::npos);
  EXPECT_NE(r.out.find("| MOD007 | error |"), std::string::npos);
  EXPECT_NE(r.out.find("Remedy"), std::string::npos);
}

TEST(Cli, LintModelFlagsBadOptics) {
  const auto clean = run_cli({"lint", "--model"});
  EXPECT_EQ(clean.code, 0) << clean.err;
  const auto bad = run_cli({"lint", "--model", "--na", "1.5"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.out.find("MOD001"), std::string::npos);
}

TEST(Cli, BadNumericOptionRejectedWithFlagName) {
  const auto r = run_cli({"lint", "--model", "--na", "abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--na"), std::string::npos);
  const auto r2 = run_cli({"lint", "--model", "--pixel", "12xyz"});
  EXPECT_EQ(r2.code, 2);
  EXPECT_NE(r2.err.find("--pixel"), std::string::npos);
}

TEST(Cli, OpcRefusesLintDirtyInput) {
  layout::Library lib("dirty_opc");
  lib.cell("bow").add_polygon(
      layout::layers::kPoly,
      geom::Polygon({{0, 0}, {400, 400}, {400, 0}, {0, 400}}));
  const std::string in = ::testing::TempDir() + "/cli_opc_dirty.gds";
  layout::write_gdsii_file(lib, in);
  const std::string out_path = ::testing::TempDir() + "/cli_opc_dirty_out.gds";
  const auto r = run_cli({"opc", "--in", in, "--out", out_path, "--layer",
                          "10/0", "--mode", "model"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("pre-flight"), std::string::npos);
  EXPECT_NE(r.err.find("LAY001"), std::string::npos);
  std::remove(in.c_str());
}

TEST(Cli, LintWithoutScopeRejected) {
  const auto r = run_cli({"lint"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--in"), std::string::npos);
}

TEST(Cli, AmbiguousTopCellNeedsCellOption) {
  layout::Library lib("two_tops");
  lib.cell("a").add_rect(layout::layers::kPoly, geom::Rect(0, 0, 10, 10));
  lib.cell("b").add_rect(layout::layers::kPoly, geom::Rect(0, 0, 10, 10));
  const std::string path = ::testing::TempDir() + "/cli_two_tops.gds";
  layout::write_gdsii_file(lib, path);
  const auto r = run_cli({"stats", "--in", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--cell"), std::string::npos);
  const auto r2 = run_cli({"stats", "--in", path, "--cell", "a"});
  EXPECT_EQ(r2.code, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opckit::cli
