#include <cmath>

#include <gtest/gtest.h>

#include "litho/litho.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

SimSpec fast_spec() {
  SimSpec spec;
  spec.optics.wavelength_nm = 248.0;
  spec.optics.na = 0.68;
  spec.optics.source.shape = SourceShape::kAnnular;
  spec.optics.source.sigma_outer = 0.8;
  spec.optics.source.sigma_inner = 0.5;
  spec.optics.source.grid = 5;
  spec.resist.threshold = 0.30;
  spec.resist.diffusion_nm = 25.0;
  spec.pixel_nm = 8.0;
  spec.guard_nm = 600;
  return spec;
}

TEST(Simulator, FrameCoversWindowWithGuard) {
  const Simulator sim(fast_spec(), Rect(-500, -500, 500, 500));
  const Frame& f = sim.frame();
  EXPECT_TRUE(is_pow2(f.nx));
  EXPECT_TRUE(is_pow2(f.ny));
  EXPECT_TRUE(f.extent().contains(Rect(-1100, -1100, 1100, 1100)));
}

TEST(Simulator, CalibrationHitsAnchorCd) {
  SimSpec spec = fast_spec();
  const double thr = calibrate_threshold(spec, 180, 360);
  EXPECT_GT(thr, 0.05);
  EXPECT_LT(thr, 0.95);

  // Re-simulate the anchor: center line must print at 180 +/- 1.5nm.
  std::vector<Rect> lines;
  for (int i = -3; i <= 3; ++i) {
    lines.emplace_back(i * 360 - 90, -2000, i * 360 + 90, 2000);
  }
  const Simulator sim(spec, Rect(-720, -1000, 720, 1000));
  const Image lat = sim.latent(Region::from_rects(lines));
  const double cd = printed_cd(lat, {0, 0}, {1, 0}, 360.0, sim.threshold());
  EXPECT_NEAR(cd, 180.0, 1.5);
}

TEST(Simulator, IsoDenseBiasExists) {
  // The core proximity effect the paper is about: an isolated 180nm line
  // prints at a different CD than the same line in a dense grating.
  SimSpec spec = fast_spec();
  calibrate_threshold(spec, 180, 360);

  const Rect window(-720, -1000, 720, 1000);
  // Dense environment.
  std::vector<Rect> dense;
  for (int i = -3; i <= 3; ++i) {
    dense.emplace_back(i * 360 - 90, -2000, i * 360 + 90, 2000);
  }
  const Simulator sim(spec, window);
  const Image lat_dense = sim.latent(Region::from_rects(dense));
  const double cd_dense =
      printed_cd(lat_dense, {0, 0}, {1, 0}, 360.0, sim.threshold());
  // Isolated line.
  const Image lat_iso =
      sim.latent(Region{Rect(-90, -2000, 90, 2000)});
  const double cd_iso =
      printed_cd(lat_iso, {0, 0}, {1, 0}, 700.0, sim.threshold());

  EXPECT_FALSE(std::isnan(cd_dense));
  EXPECT_FALSE(std::isnan(cd_iso));
  EXPECT_GT(std::abs(cd_iso - cd_dense), 4.0)
      << "no iso-dense bias: dense=" << cd_dense << " iso=" << cd_iso;
}

TEST(Simulator, LineEndPullbackExists) {
  // Line ends print short: the printed tip retreats from the drawn tip.
  SimSpec spec = fast_spec();
  calibrate_threshold(spec, 180, 360);
  // Vertical line ending at y=0 (tip), extending down.
  const Region line{Rect(-90, -3000, 90, 0)};
  const Simulator sim(spec, Rect(-500, -1500, 500, 500));
  const Image lat = sim.latent(line);
  // EPE at the tip center, outward normal +y.
  const double epe =
      edge_placement_error(lat, {0, 0}, {0, 1}, 250.0, sim.threshold());
  ASSERT_FALSE(std::isnan(epe));
  EXPECT_LT(epe, -15.0) << "expected significant pullback, got " << epe;
}

TEST(Simulator, PrintedRegionMatchesCdProbe) {
  SimSpec spec = fast_spec();
  calibrate_threshold(spec, 180, 360);
  std::vector<Rect> dense;
  for (int i = -3; i <= 3; ++i) {
    dense.emplace_back(i * 360 - 90, -2000, i * 360 + 90, 2000);
  }
  const Simulator sim(spec, Rect(-720, -600, 720, 600));
  const Image lat = sim.latent(Region::from_rects(dense));
  const geom::Region printed = sim.printed(lat);
  EXPECT_FALSE(printed.empty());
  EXPECT_TRUE(printed.contains({0, 0}));
  EXPECT_FALSE(printed.contains({180, 0}));
  // Pixel-quantized width across the center line ~ CD probe +/- pixel.
  const double cd = printed_cd(lat, {0, 0}, {1, 0}, 360.0, sim.threshold());
  geom::Coord w = 0;
  for (const auto& r : printed.rects()) {
    if (r.contains(geom::Point{0, 0})) {
      w = r.width();
      break;
    }
  }
  EXPECT_NEAR(static_cast<double>(w), cd, spec.pixel_nm * 2);
}

TEST(Simulator, HigherDosePrintsWider) {
  SimSpec spec = fast_spec();
  calibrate_threshold(spec, 180, 360);
  const Simulator sim(spec, Rect(-500, -600, 500, 600));
  const Image lat = sim.latent(Region{Rect(-90, -2000, 90, 2000)});
  const double nominal =
      printed_cd(lat, {0, 0}, {1, 0}, 700.0, sim.threshold(1.0));
  const double overdosed =
      printed_cd(lat, {0, 0}, {1, 0}, 700.0, sim.threshold(1.2));
  EXPECT_GT(overdosed, nominal + 2.0);
}

TEST(Simulator, CalibrationRejectsImpossibleAnchor) {
  SimSpec spec = fast_spec();
  // 60nm lines at 120nm pitch are beyond the optics' resolution limit.
  EXPECT_THROW(calibrate_threshold(spec, 60, 120), util::CheckError);
}

}  // namespace
}  // namespace opckit::litho
