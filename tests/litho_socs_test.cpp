/// SOCS kernel-imaging suite: Abbe-vs-SOCS aerial parity across process
/// corners, relative-eigenvalue truncation and dense-source
/// compression, KernelCache reuse, and the determinism of both
/// engines' chunked reductions.
///
/// Labelled `socs` (tests/CMakeLists.txt) so tools/ci.sh can gate the
/// ASan and TSan jobs on this suite explicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/flow.h"
#include "core/model.h"
#include "layout/generators.h"
#include "litho/litho.h"
#include "trace/metrics.h"
#include "util/thread_pool.h"

namespace opckit::litho {
namespace {

Frame test_frame(std::size_t n = 128) {
  Frame f;
  f.origin = {-512, -512};
  f.pixel_nm = 8.0;
  f.nx = n;
  f.ny = n;
  return f;
}

OpticalSystem test_optics() {
  OpticalSystem sys;
  sys.source.grid = 5;  // ~12 points: fast, still genuinely extended
  return sys;
}

/// A mask with 1-D and 2-D content: two vertical lines and a contact.
Image test_mask(const Frame& frame) {
  const std::vector<geom::Rect> rects = {geom::Rect(-90, -400, 90, 400),
                                         geom::Rect(270, -400, 430, 400),
                                         geom::Rect(-350, -150, -200, 0)};
  return rasterize(geom::Region::from_rects(rects), frame);
}

double max_abs_diff(const Image& a, const Image& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    m = std::max(m, std::abs(a.values()[i] - b.values()[i]));
  }
  return m;
}

struct ProcessCorner {
  const char* name;
  OpticalSystem sys;
  double defocus_nm = 0.0;
  MaskModel mask;
};

ProcessCorner corner(const char* name) {
  ProcessCorner c;
  c.name = name;
  c.sys = test_optics();
  return c;
}

std::vector<ProcessCorner> process_corners() {
  std::vector<ProcessCorner> corners;
  corners.push_back(corner("annular_nominal"));
  {
    ProcessCorner c = corner("circular");
    c.sys.source.shape = SourceShape::kCircular;
    c.sys.source.sigma_outer = 0.60;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("dipole_x");
    c.sys.source.shape = SourceShape::kDipoleX;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("defocus");
    c.defocus_nm = 150.0;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("coma");
    c.sys.aberrations.coma_x_nm = 20.0;
    c.sys.aberrations.coma_y_nm = -12.0;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("astig_defocus");
    c.sys.aberrations.astig_nm = 15.0;
    c.defocus_nm = -100.0;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("att_psm");
    c.mask.type = MaskType::kAttenuatedPsm;
    corners.push_back(c);
  }
  {
    ProcessCorner c = corner("psm_defocus_aberrated");
    c.mask.type = MaskType::kAttenuatedPsm;
    c.defocus_nm = 120.0;
    c.sys.aberrations.coma_y_nm = 10.0;
    corners.push_back(c);
  }
  return corners;
}

// Acceptance criterion: max aerial-intensity deviation vs Abbe <= 1e-3
// at ε = 1e-4, across source shapes, defocus, aberrations, and PSM.
TEST(Socs, MatchesAbbeAcrossProcessCorners) {
  const Frame frame = test_frame();
  const Image mask = test_mask(frame);
  for (const ProcessCorner& c : process_corners()) {
    KernelCache::instance().clear();
    const AbbeImager abbe(c.sys, frame);
    const SocsImager socs(c.sys, frame, SocsOptions{1e-4});
    const Image ref = abbe.aerial_image(mask, c.defocus_nm, c.mask);
    const Image img = socs.aerial_image(mask, c.defocus_nm, c.mask);
    EXPECT_LE(max_abs_diff(ref, img), 1e-3) << c.name;
  }
}

TEST(Socs, ClearFieldNormalizesToOne) {
  const Frame frame = test_frame(64);
  KernelCache::instance().clear();
  const SocsImager socs(test_optics(), frame, SocsOptions{1e-4});
  const Image img = socs.aerial_image(Image(frame, 1.0));
  for (double v : img.values()) EXPECT_NEAR(v, 1.0, 1e-3);
}

// Truncation is a relative-eigenvalue cutoff (keep λ_k ≥ ε·λ_max), so
// the kept count tracks the continuous-TCC spectrum and SATURATES as
// the source grid densifies while |S| keeps growing — that gap is the
// whole speedup. (A captured-energy criterion would keep nearly all
// |S| eigenpairs at tight tolerances: the discrete spectrum's tail is
// flat, each coarsely-sampled source point carrying its own sliver.)
TEST(Socs, KernelSetCompressesDenseSource) {
  const Frame frame = test_frame();
  OpticalSystem dense = test_optics();
  dense.source.grid = 21;  // ~212 points — production-dense sampling
  const SocsKernelSet set =
      build_socs_kernels(dense, frame, 0.0, SocsOptions{1e-3});
  EXPECT_EQ(set.source_points, sample_source(dense).size());
  EXPECT_GT(set.energy_captured, 0.97);
  EXPECT_LE(set.energy_captured, 1.0 + 1e-12);
  ASSERT_GE(set.kernels.size(), 1u);
  EXPECT_LT(set.kernels.size(), set.source_points / 3)
      << "dense-source kernel count should sit far below |S|";
  // Every kept weight clears the relative cutoff, descending, and each
  // kernel is unit-normalized (||φ_k||² = 1).
  const double lambda_max = set.kernels.front().weight;
  for (std::size_t k = 0; k < set.kernels.size(); ++k) {
    const SocsKernel& ker = set.kernels[k];
    EXPECT_GE(ker.weight, 1e-3 * lambda_max);
    if (k > 0) {
      EXPECT_LE(ker.weight, set.kernels[k - 1].weight);
    }
    double norm2 = 0.0;
    for (const Complex& v : ker.value) norm2 += std::norm(v);
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
  // Saturation: nearly doubling the source density must not come close
  // to doubling the kernel count.
  OpticalSystem sparser = test_optics();
  sparser.source.grid = 15;
  const SocsKernelSet half =
      build_socs_kernels(sparser, frame, 0.0, SocsOptions{1e-3});
  ASSERT_GE(set.source_points, half.source_points * 9 / 5);
  EXPECT_LE(set.kernels.size(), half.kernels.size() + 8);
}

TEST(Socs, TighterEpsilonKeepsMoreKernels) {
  const Frame frame = test_frame();
  OpticalSystem sys = test_optics();
  sys.source.grid = 9;
  const SocsKernelSet coarse =
      build_socs_kernels(sys, frame, 0.0, SocsOptions{1e-2});
  const SocsKernelSet fine =
      build_socs_kernels(sys, frame, 0.0, SocsOptions{1e-6});
  EXPECT_LT(coarse.kernels.size(), fine.kernels.size());
  EXPECT_GE(fine.energy_captured, coarse.energy_captured);
}

TEST(Socs, KernelCacheReusesSetsAcrossImagersAndDefocus) {
  const Frame frame = test_frame(64);
  const OpticalSystem sys = test_optics();
  const Image mask = test_mask(frame);
  KernelCache::instance().clear();
  const auto before = trace::metrics().snapshot();

  const SocsImager a(sys, frame);
  const SocsImager b(sys, frame);  // same process key, distinct instance
  a.aerial_image(mask);
  a.aerial_image(mask);            // hit
  b.aerial_image(mask);            // hit (cache is process-wide)
  a.aerial_image(mask, 150.0);     // new defocus -> new set
  Frame shifted = frame;
  shifted.origin = {1000, -3000};  // origin is NOT part of the key
  const SocsImager c(sys, shifted);
  const std::vector<geom::Rect> far_rects = {
      geom::Rect(1100, -2900, 1300, -2500)};
  c.aerial_image(
      rasterize(geom::Region::from_rects(far_rects), shifted));  // hit

  const KernelCache::Stats stats = KernelCache::instance().stats();
  EXPECT_EQ(stats.sets_built, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(KernelCache::instance().size(), 2u);

  const auto delta =
      trace::MetricsSnapshot::delta(before, trace::metrics().snapshot());
  EXPECT_EQ(delta.counters.at(trace::metric::kLithoSocsKernelSetsBuilt), 2u);
  EXPECT_EQ(delta.counters.at(trace::metric::kLithoSocsCacheHits), 3u);
  EXPECT_GE(delta.counters.at(trace::metric::kLithoSocsKernelsBuilt), 2u);
  EXPECT_GE(delta.gauges.at(trace::metric::kLithoSocsEnergyCaptured),
            2.0 * 0.99);
}

// The chunked Abbe reduction replaced a materialize-everything buffer;
// its contract is bit-identical output whether the per-source loop runs
// on the global pool (caller on the main thread) or inline (caller is
// already a pool worker — nested parallel_for degenerates to serial).
TEST(Socs, AbbeChunkedReductionDeterministicAcrossThreadCounts) {
  const Frame frame = test_frame();
  OpticalSystem sys = test_optics();
  sys.source.grid = 7;  // > one chunk worth of source points
  const Image mask = test_mask(frame);
  const AbbeImager abbe(sys, frame);
  const Image ref = abbe.aerial_image(mask, 80.0);
  for (std::size_t workers : {1u, 2u, 8u}) {
    Image img(frame);
    util::ThreadPool pool(workers);
    pool.parallel_for(1, [&](std::size_t) {
      img = abbe.aerial_image(mask, 80.0);
    });
    EXPECT_EQ(img.values(), ref.values()) << "workers=" << workers;
  }
}

TEST(Socs, SocsImageDeterministicAcrossThreadCounts) {
  const Frame frame = test_frame();
  const OpticalSystem sys = test_optics();
  const Image mask = test_mask(frame);
  KernelCache::instance().clear();
  const SocsImager socs(sys, frame);
  const Image ref = socs.aerial_image(mask);
  for (std::size_t workers : {2u, 8u}) {
    Image img(frame);
    util::ThreadPool pool(workers);
    pool.parallel_for(1,
                      [&](std::size_t) { img = socs.aerial_image(mask); });
    EXPECT_EQ(img.values(), ref.values()) << "workers=" << workers;
  }
}

// Acceptance criterion: model OPC driven by SOCS converges to the same
// corrections as the Abbe reference within 0.5 nm of EPE.
TEST(Socs, ModelOpcEpeMatchesAbbeWithinHalfNanometer) {
  const std::vector<geom::Polygon> targets = {
      geom::Polygon(geom::Rect(-90, -600, 90, 600)),
      geom::Polygon(geom::Rect(270, -600, 430, 200))};
  const geom::Rect window(-600, -800, 900, 800);
  opc::ModelOpcSpec opc_spec;
  opc_spec.max_iterations = 6;

  litho::SimSpec abbe;
  abbe.optics.source.grid = 5;
  calibrate_threshold(abbe, 180, 360);
  litho::SimSpec socs = abbe;
  socs.imaging = ImagingMode::kSocs;
  calibrate_threshold(socs, 180, 360);  // calibrate under its own engine
  EXPECT_NEAR(abbe.resist.threshold, socs.resist.threshold, 1e-3);

  const auto ra = opc::run_model_opc(targets, abbe, window, opc_spec);
  const auto rs = opc::run_model_opc(targets, socs, window, opc_spec);
  EXPECT_NEAR(ra.final_iteration().rms_epe_nm,
              rs.final_iteration().rms_epe_nm, 0.5);
  EXPECT_NEAR(ra.final_iteration().max_abs_epe_nm,
              rs.final_iteration().max_abs_epe_nm, 0.5);
}

}  // namespace
}  // namespace opckit::litho

namespace opckit::opc {
namespace {

litho::SimSpec socs_sim() {
  litho::SimSpec sim;
  sim.optics.source.grid = 5;
  sim.imaging = litho::ImagingMode::kSocs;
  litho::calibrate_threshold(sim, 180, 360);
  return sim;
}

layout::Library socs_chip(int cols, int rows) {
  layout::Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

// The flow-level face of the determinism contract: a SOCS flat flow is
// byte-identical at jobs 1 and 8 (kernel sets shared across workers).
TEST(SocsFlow, FlatOutputIdenticalAcrossJobCounts) {
  FlowSpec spec;
  spec.sim = socs_sim();
  spec.opc.max_iterations = 3;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  spec.cache = false;

  spec.jobs = 1;
  layout::Library serial = socs_chip(2, 2);
  run_flat_opc(serial, "top", spec);
  const auto ref_span = serial.at("top").shapes(spec.output_layer);
  const std::vector<geom::Polygon> ref(ref_span.begin(), ref_span.end());
  ASSERT_FALSE(ref.empty());

  spec.jobs = 8;
  layout::Library parallel = socs_chip(2, 2);
  run_flat_opc(parallel, "top", spec);
  const auto got_span = parallel.at("top").shapes(spec.output_layer);
  EXPECT_EQ(std::vector<geom::Polygon>(got_span.begin(), got_span.end()),
            ref);
}

TEST(SocsFlow, FingerprintChangesIffImagingKnobsChange) {
  FlowSpec base;
  const std::uint64_t fp = flow_fingerprint(base, "flat");
  EXPECT_EQ(flow_fingerprint(base, "flat"), fp);

  FlowSpec socs = base;
  socs.sim.imaging = litho::ImagingMode::kSocs;
  EXPECT_NE(flow_fingerprint(socs, "flat"), fp);

  FlowSpec eps = base;
  eps.sim.socs_epsilon = 1e-3;
  EXPECT_NE(flow_fingerprint(eps, "flat"), fp);
  EXPECT_NE(flow_fingerprint(eps, "flat"), flow_fingerprint(socs, "flat"));

  // Non-imaging, non-output-affecting knobs still leave it unchanged.
  FlowSpec jobs = base;
  jobs.jobs = 8;
  EXPECT_EQ(flow_fingerprint(jobs, "flat"), fp);
}

}  // namespace
}  // namespace opckit::opc
