#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "layout/gdsii.h"
#include "layout/generators.h"
#include "util/check.h"

namespace opckit::layout {
namespace {

using geom::Orientation;
using geom::Point;
using geom::Rect;
using geom::Transform;
using gdsii_detail::decode_real8;
using gdsii_detail::encode_real8;

TEST(GdsiiReal8, ZeroRoundTrips) {
  EXPECT_EQ(encode_real8(0.0), 0u);
  EXPECT_EQ(decode_real8(0), 0.0);
}

TEST(GdsiiReal8, KnownEncodingOfOne) {
  // 1.0 = 0x1p0 -> exponent 65 (excess 64), mantissa 0x10000000000000.
  EXPECT_EQ(encode_real8(1.0), 0x4110000000000000ULL);
}

TEST(GdsiiReal8, UnitsValuesRoundTrip) {
  for (double v : {1e-3, 1e-9, 90.0, 180.0, 270.0, 0.5, -2.75, 1e6}) {
    EXPECT_NEAR(decode_real8(encode_real8(v)), v, std::abs(v) * 1e-14)
        << "value " << v;
  }
}

TEST(GdsiiReal8, NegativeSignBit) {
  EXPECT_EQ(encode_real8(-1.0) >> 63, 1u);
  EXPECT_DOUBLE_EQ(decode_real8(encode_real8(-1.0)), -1.0);
}

Library sample_library() {
  Library lib("sample");
  Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layers::kPoly, Rect(0, 0, 100, 50));
  leaf.add_polygon(layers::kMetal1,
                   geom::Polygon(std::vector<Point>{{0, 0},
                                                    {60, 0},
                                                    {60, 30},
                                                    {30, 30},
                                                    {30, 60},
                                                    {0, 60}}));
  Cell& top = lib.cell("top");
  top.add_rect(layers::kPoly, Rect(-500, -500, -400, -400));
  CellRef sref;
  sref.child = "leaf";
  sref.transform = Transform(Orientation::kMXR90, {1000, 2000});
  top.add_ref(sref);
  CellRef aref;
  aref.child = "leaf";
  aref.columns = 3;
  aref.rows = 2;
  aref.column_step = {200, 0};
  aref.row_step = {0, 300};
  aref.transform = Transform(Orientation::kR180, {5000, 5000});
  top.add_ref(aref);
  return lib;
}

TEST(Gdsii, RoundTripPreservesEverything) {
  const Library lib = sample_library();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);

  EXPECT_EQ(back.name(), "sample");
  EXPECT_EQ(back.cell_names(), lib.cell_names());
  EXPECT_EQ(back.at("leaf").shapes(layers::kPoly).size(), 1u);
  EXPECT_EQ(back.at("leaf").shapes(layers::kMetal1).size(), 1u);
  EXPECT_EQ(back.at("leaf").shapes(layers::kPoly)[0],
            lib.at("leaf").shapes(layers::kPoly)[0]);
  EXPECT_EQ(back.at("leaf").shapes(layers::kMetal1)[0],
            lib.at("leaf").shapes(layers::kMetal1)[0]);
  ASSERT_EQ(back.at("top").refs().size(), 2u);
  EXPECT_EQ(back.at("top").refs()[0], lib.at("top").refs()[0]);
  EXPECT_EQ(back.at("top").refs()[1], lib.at("top").refs()[1]);
}

TEST(Gdsii, RoundTripPreservesFlattenedGeometry) {
  const Library lib = sample_library();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);
  const auto a = lib.flatten("top", layers::kPoly);
  const auto b = back.flatten("top", layers::kPoly);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Gdsii, AllOrientationsRoundTrip) {
  Library lib("orient");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 10, 20));
  Cell& top = lib.cell("top");
  for (Orientation o : geom::all_orientations()) {
    CellRef ref;
    ref.child = "leaf";
    ref.transform = Transform(o, {static_cast<geom::Coord>(o) * 100, 0});
    top.add_ref(ref);
  }
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);
  ASSERT_EQ(back.at("top").refs().size(), geom::kOrientationCount);
  for (std::size_t i = 0; i < geom::kOrientationCount; ++i) {
    EXPECT_EQ(back.at("top").refs()[i].transform,
              lib.at("top").refs()[i].transform)
        << "orientation " << i;
  }
}

TEST(Gdsii, DeterministicBytes) {
  const Library lib = sample_library();
  std::ostringstream a(std::ios::binary), b(std::ios::binary);
  write_gdsii(lib, a);
  write_gdsii(lib, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(gdsii_byte_size(lib), a.str().size());
}

TEST(Gdsii, ByteSizeGrowsWithVertices) {
  Library small("s"), big("b");
  small.cell("c").add_rect(layers::kPoly, Rect(0, 0, 10, 10));
  for (int i = 0; i < 100; ++i) {
    big.cell("c").add_rect(layers::kPoly, Rect(i * 20, 0, i * 20 + 10, 10));
  }
  EXPECT_GT(gdsii_byte_size(big), gdsii_byte_size(small) + 100 * 40);
}

TEST(Gdsii, FileRoundTrip) {
  const Library lib = sample_library();
  const std::string path = ::testing::TempDir() + "/opckit_gdsii_test.gds";
  write_gdsii_file(lib, path);
  const Library back = read_gdsii_file(path);
  EXPECT_EQ(back.cell_names(), lib.cell_names());
  std::remove(path.c_str());
}

TEST(Gdsii, CoordinateOverflowThrows) {
  Library lib("big");
  lib.cell("c").add_rect(layers::kPoly,
                         Rect(0, 0, 3'000'000'000LL, 10));
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(write_gdsii(lib, os), util::CheckError);
}

TEST(Gdsii, TruncatedStreamThrows) {
  const Library lib = sample_library();
  std::ostringstream os(std::ios::binary);
  write_gdsii(lib, os);
  const std::string bytes = os.str();
  std::istringstream cut(bytes.substr(0, bytes.size() / 2),
                         std::ios::binary);
  EXPECT_THROW(read_gdsii(cut), util::InputError);
}

TEST(Gdsii, GarbageStreamThrows) {
  std::istringstream junk("this is not gdsii at all, not even close");
  EXPECT_THROW(read_gdsii(junk), util::InputError);
}

}  // namespace
}  // namespace opckit::layout
