#include <gtest/gtest.h>

#include "geometry/rect.h"

namespace opckit::geom {
namespace {

TEST(Rect, BasicsAndArea) {
  const Rect r(0, 0, 10, 4);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.center(), Point(5, 2));
  EXPECT_FALSE(r.is_empty());
}

TEST(Rect, EmptyAndDegenerate) {
  EXPECT_TRUE(Rect::empty().is_empty());
  EXPECT_TRUE(Rect(0, 0, 0, 5).is_empty());   // zero width
  EXPECT_TRUE(Rect(0, 0, 5, 0).is_empty());   // zero height
  EXPECT_EQ(Rect(3, 3, 3, 3).area(), 0);
}

TEST(Rect, ContainsPoint) {
  const Rect r(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));    // corner counts
  EXPECT_TRUE(r.contains(Point{10, 10}));  // corner counts
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_FALSE(r.contains_strict(Point{0, 5}));
  EXPECT_TRUE(r.contains_strict(Point{1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect(0, 0, 10, 10)));
  EXPECT_TRUE(outer.contains(Rect(2, 2, 8, 8)));
  EXPECT_FALSE(outer.contains(Rect(-1, 2, 8, 8)));
  EXPECT_FALSE(outer.contains(Rect::empty()));
}

TEST(Rect, OverlapsVsTouches) {
  const Rect a(0, 0, 10, 10);
  const Rect b(10, 0, 20, 10);  // shares an edge only
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.touches(b));
  const Rect c(9, 9, 11, 11);
  EXPECT_TRUE(a.overlaps(c));
}

TEST(Rect, Intersected) {
  const Rect a(0, 0, 10, 10), b(5, -5, 15, 5);
  EXPECT_EQ(a.intersected(b), Rect(5, 0, 10, 5));
  EXPECT_TRUE(a.intersected(Rect(20, 20, 30, 30)).is_empty());
}

TEST(Rect, UnitedTreatsEmptyAsIdentity) {
  const Rect a(0, 0, 10, 10);
  EXPECT_EQ(Rect::empty().united(a), a);
  EXPECT_EQ(a.united(Rect::empty()), a);
  EXPECT_EQ(a.united(Rect(-5, 3, 2, 20)), Rect(-5, 0, 10, 20));
}

TEST(Rect, InflatedAndTranslated) {
  const Rect r(0, 0, 10, 10);
  EXPECT_EQ(r.inflated(2), Rect(-2, -2, 12, 12));
  EXPECT_EQ(r.inflated(1, 3), Rect(-1, -3, 11, 13));
  EXPECT_TRUE(r.inflated(-6).is_empty());  // over-shrunk inverts
  EXPECT_EQ(r.translated({5, -5}), Rect(5, -5, 15, 5));
}

}  // namespace
}  // namespace opckit::geom
