/// Property suite for the planned FFT engine: bit-exact parity of the
/// planned complex path against the historic recurrence kernel, r2c/c2r
/// round trips and Hermitian invariants over random sizes and seeds,
/// SparseInverseBatch parity against the dense inverse, and PlanCache
/// reuse accounting under concurrent requests (the TSan target for the
/// jobs=8 flow's shared-plan access pattern).
#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "litho/fft.h"
#include "litho/image.h"
#include "litho/resist.h"
#include "util/check.h"
#include "util/rng.h"

namespace opckit::litho {
namespace {

/// Verbatim copy of the pre-plan scalar kernel (serial w *= wlen
/// recurrence). The planned complex path must reproduce it bit for bit
/// — that is the guarantee that lets the imaging engines switch to
/// plans without moving flow output.
void legacy_fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                       static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv;
  }
}

std::vector<Complex> random_complex(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

TEST(FftPlan, ComplexParityWithLegacyIsBitExact) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 32u, 128u, 512u}) {
    for (std::uint64_t seed : {3u, 17u, 99u}) {
      const FftPlan plan(n, FftKind::kComplex);
      for (const bool inverse : {false, true}) {
        std::vector<Complex> planned = random_complex(n, seed);
        std::vector<Complex> legacy = planned;
        plan.transform(planned.data(), inverse ? FftDirection::kInverse
                                               : FftDirection::kForward);
        legacy_fft(legacy, inverse);
        if (inverse) {
          // FftPlan primitives are unnormalized; apply the same final
          // scaling the legacy kernel folds in.
          const double inv = 1.0 / static_cast<double>(n);
          for (auto& c : planned) c *= inv;
        }
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(planned[i].real(), legacy[i].real())
              << "n=" << n << " seed=" << seed << " bin " << i;
          EXPECT_EQ(planned[i].imag(), legacy[i].imag())
              << "n=" << n << " seed=" << seed << " bin " << i;
        }
      }
    }
  }
}

TEST(FftPlan, RealForwardMatchesComplexForward) {
  for (std::size_t n : {1u, 2u, 4u, 16u, 64u, 256u}) {
    for (std::uint64_t seed : {7u, 21u}) {
      const std::vector<double> x = random_real(n, seed);
      std::vector<Complex> ref(n);
      for (std::size_t i = 0; i < n; ++i) ref[i] = x[i];
      const FftPlan cplan(n, FftKind::kComplex);
      cplan.transform(ref.data(), FftDirection::kForward);

      const FftPlan rplan(n, FftKind::kReal);
      std::vector<Complex> half(n / 2 + 1);
      rplan.forward_real(x.data(), half.data());
      for (std::size_t k = 0; k <= n / 2; ++k) {
        EXPECT_NEAR(half[k].real(), ref[k].real(), 1e-12)
            << "n=" << n << " seed=" << seed << " bin " << k;
        EXPECT_NEAR(half[k].imag(), ref[k].imag(), 1e-12)
            << "n=" << n << " seed=" << seed << " bin " << k;
      }
    }
  }
}

TEST(FftPlan, RealRoundTripRecoversInput) {
  for (std::size_t n : {1u, 2u, 8u, 64u, 1024u}) {
    for (std::uint64_t seed : {1u, 13u, 42u}) {
      const std::vector<double> x = random_real(n, seed);
      const FftPlan plan(n, FftKind::kReal);
      std::vector<Complex> half(n / 2 + 1);
      std::vector<double> back(n);
      plan.forward_real(x.data(), half.data());
      plan.inverse_real(half.data(), back.data());
      const double inv = 1.0 / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(back[i] * inv, x[i], 1e-12)
            << "n=" << n << " seed=" << seed << " sample " << i;
      }
    }
  }
}

TEST(FftPlan, RealPathRequiresRealPlan) {
  const FftPlan plan(8, FftKind::kComplex);
  std::vector<double> x(8, 1.0);
  std::vector<Complex> half(5);
  std::vector<double> back(8);
  EXPECT_THROW(plan.forward_real(x.data(), half.data()), util::CheckError);
  EXPECT_THROW(plan.inverse_real(half.data(), back.data()), util::CheckError);
}

TEST(FftPlan, RejectsNonPow2) {
  EXPECT_THROW(FftPlan(0, FftKind::kComplex), util::CheckError);
  EXPECT_THROW(FftPlan(12, FftKind::kComplex), util::CheckError);
  EXPECT_THROW(FftPlan(12, FftKind::kReal), util::CheckError);
}

TEST(FftPlan, DegenerateSizeOne) {
  const FftPlan plan(1, FftKind::kReal);
  Complex c{3.5, -1.0};
  plan.transform(&c, FftDirection::kForward);
  EXPECT_EQ(c, (Complex{3.5, -1.0}));  // length-1 transform is identity
  const double x = 2.25;
  Complex spec;
  plan.forward_real(&x, &spec);
  EXPECT_EQ(spec, (Complex{2.25, 0.0}));
  double back = 0.0;
  plan.inverse_real(&spec, &back);
  EXPECT_EQ(back, 2.25);
}

TEST(FftHelpers, NextPow2OverflowIsCheckedNotInfinite) {
  constexpr std::size_t kTop = std::size_t{1} << 63;
  EXPECT_EQ(next_pow2(kTop), kTop);
  EXPECT_EQ(next_pow2(kTop - 1), kTop);
  // The old loop shifted its accumulator into 0 and spun forever here.
  EXPECT_THROW(next_pow2(kTop + 1), util::CheckError);
}

TEST(FftHelpers, FreqRejectsOutOfRangeBin) {
  EXPECT_THROW(fft_freq(0, 0), util::CheckError);
  EXPECT_THROW(fft_freq(8, 8), util::CheckError);
  EXPECT_DOUBLE_EQ(fft_freq(0, 1), 0.0);
}

TEST(Fft2dPlan, ComplexRoundTripAndLegacyParity) {
  const std::size_t nx = 32, ny = 16;
  const Fft2d plan(nx, ny);
  std::vector<Complex> planned = random_complex(nx * ny, 77);
  std::vector<Complex> ref = planned;
  plan.forward(planned);
  // Legacy 2-D: rows then strided columns, same kernels.
  for (std::size_t y = 0; y < ny; ++y) {
    std::vector<Complex> row(ref.begin() + static_cast<std::ptrdiff_t>(y * nx),
                             ref.begin() +
                                 static_cast<std::ptrdiff_t>((y + 1) * nx));
    legacy_fft(row, false);
    std::copy(row.begin(), row.end(),
              ref.begin() + static_cast<std::ptrdiff_t>(y * nx));
  }
  for (std::size_t x = 0; x < nx; ++x) {
    std::vector<Complex> col(ny);
    for (std::size_t y = 0; y < ny; ++y) col[y] = ref[y * nx + x];
    legacy_fft(col, false);
    for (std::size_t y = 0; y < ny; ++y) ref[y * nx + x] = col[y];
  }
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_EQ(planned[i], ref[i]) << "bin " << i;
  }
  plan.inverse(planned);
  const std::vector<Complex> orig = random_complex(nx * ny, 77);
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_NEAR(planned[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(planned[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft2dPlan, RealForwardIsHermitianAndMatchesComplex) {
  for (const auto [nx, ny] :
       {std::pair<std::size_t, std::size_t>{16, 16}, {32, 8}, {4, 64}}) {
    const std::vector<double> img = random_real(nx * ny, 31);
    const Fft2d plan(nx, ny);
    std::vector<Complex> spec;
    plan.forward_real(img, spec);

    std::vector<Complex> ref(nx * ny);
    for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = img[i];
    plan.forward(ref);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(spec[i].real(), ref[i].real(), 1e-11) << "bin " << i;
      EXPECT_NEAR(spec[i].imag(), ref[i].imag(), 1e-11) << "bin " << i;
    }
    // Hermitian invariant over the FULL layout, mirror bins included:
    // F[-kx, -ky] = conj(F[kx, ky]) with wrap-around indexing.
    for (std::size_t ky = 0; ky < ny; ++ky) {
      for (std::size_t kx = 0; kx < nx; ++kx) {
        const Complex f = spec[ky * nx + kx];
        const Complex m =
            spec[((ny - ky) % ny) * nx + (nx - kx) % nx];
        EXPECT_NEAR(m.real(), f.real(), 1e-11);
        EXPECT_NEAR(m.imag(), -f.imag(), 1e-11);
      }
    }
  }
}

TEST(Fft2dPlan, RealRoundTripIgnoresStaleMirrorHalf) {
  const std::size_t nx = 32, ny = 32;
  const std::vector<double> img = random_real(nx * ny, 55);
  const Fft2d plan(nx, ny);
  std::vector<Complex> spec;
  plan.forward_real(img, spec);
  // inverse_real documents that only the kx <= nx/2 half is read:
  // clobber the mirror half to prove it.
  for (std::size_t ky = 0; ky < ny; ++ky) {
    for (std::size_t kx = nx / 2 + 1; kx < nx; ++kx) {
      spec[ky * nx + kx] = Complex{1e9, -1e9};
    }
  }
  std::vector<double> back;
  plan.inverse_real(spec, back);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back[i], img[i], 1e-12) << "sample " << i;
  }
}

TEST(SparseBatch, MatchesDenseInverseBitExact) {
  const std::size_t nx = 32, ny = 32;
  const Fft2d plan(nx, ny);
  const std::vector<Complex> spectrum = random_complex(nx * ny, 123);

  // A pupil-like support: a disk of bins around DC (wrap-around), the
  // exact shape the imaging engines bind.
  std::vector<std::uint32_t> support;
  for (std::size_t ky = 0; ky < ny; ++ky) {
    const double fy = fft_freq(ky, ny);
    for (std::size_t kx = 0; kx < nx; ++kx) {
      const double fx = fft_freq(kx, nx);
      if (fx * fx + fy * fy <= 0.1) {
        support.push_back(static_cast<std::uint32_t>(ky * nx + kx));
      }
    }
  }
  ASSERT_FALSE(support.empty());
  util::Rng rng(9);
  std::vector<Complex> factors(support.size());
  for (auto& f : factors) f = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

  const SparseInverseBatch batch(plan, support);
  EXPECT_EQ(batch.support_rows() + batch.rows_pruned(), ny);
  EXPECT_GT(batch.rows_pruned(), 0u);  // the disk must not touch all rows
  std::vector<double> pruned;
  batch.inverse_mag2(spectrum.data(), factors, pruned);

  // Dense reference: scatter into a full field, legacy normalized
  // inverse, then |.|^2 — the pre-plan engine's exact sequence.
  std::vector<Complex> field(nx * ny, Complex{0.0, 0.0});
  for (std::size_t j = 0; j < support.size(); ++j) {
    field[support[j]] = spectrum[support[j]] * factors[j];
  }
  fft_2d(field, nx, ny, /*inverse=*/true);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_EQ(pruned[i], std::norm(field[i])) << "pixel " << i;
  }
}

TEST(SparseBatch, ValidatesSupportIndices) {
  const Fft2d plan(8, 8);
  const std::vector<std::uint32_t> out_of_range = {3, 64};
  EXPECT_THROW(SparseInverseBatch(plan, out_of_range), util::CheckError);
  const std::vector<std::uint32_t> not_ascending = {5, 5};
  EXPECT_THROW(SparseInverseBatch(plan, not_ascending), util::CheckError);
  const std::vector<std::uint32_t> descending = {9, 2};
  EXPECT_THROW(SparseInverseBatch(plan, descending), util::CheckError);
}

TEST(SparseBatch, InverseFieldMagnitudeMatchesInverseMag2) {
  // |inverse_field|² must be bit-identical to inverse_mag2: the ILT
  // adjoint consumes the complex fields, the imaging loop the fused
  // magnitudes, and both must describe the same image.
  const std::size_t nx = 32, ny = 16;
  const Fft2d plan(nx, ny);
  std::vector<std::uint32_t> support;
  for (std::uint32_t i = 0; i < nx * ny; i += 7) support.push_back(i);
  const SparseInverseBatch batch(plan, support);
  const auto spectrum = random_complex(nx * ny, 77);
  const auto factors = random_complex(support.size(), 78);

  std::vector<double> mag2;
  batch.inverse_mag2(spectrum.data(), factors, mag2);
  std::vector<Complex> field;
  batch.inverse_field(spectrum.data(), factors, field);
  ASSERT_EQ(field.size(), mag2.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_EQ(std::norm(field[i]), mag2[i]) << "pixel " << i;
  }

  // And the field itself matches the dense inverse of the masked
  // spectrum.
  std::vector<Complex> dense(nx * ny, Complex{0.0, 0.0});
  for (std::size_t j = 0; j < support.size(); ++j) {
    dense[support[j]] = spectrum[support[j]] * factors[j];
  }
  fft_2d(dense, nx, ny, /*inverse=*/true);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(field[i].real(), dense[i].real()) << "pixel " << i;
    EXPECT_EQ(field[i].imag(), dense[i].imag()) << "pixel " << i;
  }
}

/// Dense-complex reference blur: full forward, transfer applied to
/// EVERY bin (mirror half included), full inverse. The production
/// r2c path (litho::gaussian_blur) touches only the kx <= nx/2 half
/// and leaves the mirror stale — the layout contract on
/// Fft2d::forward_real says that must not change the result.
Image blur_dense_reference(const Image& img, double sigma_nm) {
  const Frame& f = img.frame();
  std::vector<Complex> spec(f.nx * f.ny);
  for (std::size_t i = 0; i < spec.size(); ++i) spec[i] = img.values()[i];
  fft_2d(spec, f.nx, f.ny, /*inverse=*/false);
  const double c =
      -2.0 * std::numbers::pi * std::numbers::pi * sigma_nm * sigma_nm;
  for (std::size_t ky = 0; ky < f.ny; ++ky) {
    const double fy = fft_freq(ky, f.ny) / f.pixel_nm;
    for (std::size_t kx = 0; kx < f.nx; ++kx) {
      const double fx = fft_freq(kx, f.nx) / f.pixel_nm;
      spec[ky * f.nx + kx] *= std::exp(c * (fx * fx + fy * fy));
    }
  }
  fft_2d(spec, f.nx, f.ny, /*inverse=*/true);
  Image out(f);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    out.values()[i] = spec[i].real();
  }
  return out;
}

TEST(R2cLayoutContract, HalfSpectrumBlurMatchesDenseOnNonSquareFrames) {
  // Non-square on both orientations (nx > ny and nx < ny): a stride or
  // mirror-indexing mistake in the half-spectrum layout shows up only
  // when nx != ny.
  struct Shape { std::size_t nx, ny; };
  for (const Shape s : {Shape{64, 16}, Shape{16, 64}, Shape{32, 8}}) {
    Frame f;
    f.pixel_nm = 8.0;
    f.nx = s.nx;
    f.ny = s.ny;
    Image img(f);
    util::Rng rng(s.nx * 1000 + s.ny);
    for (auto& v : img.values()) v = rng.uniform(0, 1);
    for (const double sigma : {10.0, 25.0}) {
      const Image got = gaussian_blur(img, sigma);
      const Image want = blur_dense_reference(img, sigma);
      for (std::size_t i = 0; i < got.values().size(); ++i) {
        EXPECT_NEAR(got.values()[i], want.values()[i], 1e-12)
            << s.nx << "x" << s.ny << " sigma=" << sigma << " pixel " << i;
      }
    }
  }
}

TEST(PlanCacheTest, BuildsOncePerKeyAndCountsHits) {
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  const auto a = cache.get(64, FftKind::kComplex);
  const auto b = cache.get(64, FftKind::kComplex);
  EXPECT_EQ(a.get(), b.get());  // same immutable plan object
  const auto c = cache.get(64, FftKind::kReal);  // distinct key
  EXPECT_NE(a.get(), c.get());
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.builds, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ConcurrentRequestsShareOneBuild) {
  // The jobs=8 flow pattern: many workers requesting the same frame
  // shape at once. Exactly one build may happen; everyone must get the
  // same plan and correct transforms. (TSan gate: tools/ci.sh runs
  // this suite under -L fft in the tsan job.)
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 16;
  std::vector<std::thread> threads;
  std::vector<const FftPlan*> seen(kThreads, nullptr);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const auto plan = cache.get(256, FftKind::kReal);
        seen[t] = plan.get();
        std::vector<Complex> v(256, Complex{1.0, 0.0});
        plan->transform(v.data(), FftDirection::kForward);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.hits, kThreads * kIters - 1);
}

}  // namespace
}  // namespace opckit::litho
