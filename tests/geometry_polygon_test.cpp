#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace opckit::geom {
namespace {

Polygon l_shape() {
  // CCW L: 20x20 square with the top-right 10x10 quadrant removed.
  return Polygon(std::vector<Point>{
      {0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
}

TEST(Polygon, RectConstructor) {
  const Polygon p{Rect(0, 0, 10, 4)};
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.is_ccw());
  EXPECT_EQ(p.area(), 40);
  EXPECT_EQ(p.perimeter(), 28);
}

TEST(Polygon, LShapeMetrics) {
  const Polygon p = l_shape();
  EXPECT_TRUE(p.is_manhattan());
  EXPECT_TRUE(p.is_ccw());
  EXPECT_EQ(p.area(), 300);
  EXPECT_EQ(p.perimeter(), 80);
  EXPECT_EQ(p.bbox(), Rect(0, 0, 20, 20));
}

TEST(Polygon, EdgesWrapAround) {
  const Polygon p{Rect(0, 0, 10, 10)};
  const auto es = p.edges();
  ASSERT_EQ(es.size(), 4u);
  EXPECT_EQ(es[3], Edge({0, 10}, {0, 0}));
}

TEST(Polygon, OutwardNormalsOnCcwRect) {
  const Polygon p{Rect(0, 0, 10, 10)};
  EXPECT_EQ(p.edge(0).outward_normal(), Point(0, -1));  // bottom
  EXPECT_EQ(p.edge(1).outward_normal(), Point(1, 0));   // right
  EXPECT_EQ(p.edge(2).outward_normal(), Point(0, 1));   // top
  EXPECT_EQ(p.edge(3).outward_normal(), Point(-1, 0));  // left
}

TEST(Polygon, SignedAreaOrientation) {
  Polygon ccw{Rect(0, 0, 4, 4)};
  EXPECT_GT(ccw.signed_area2(), 0);
  std::vector<Point> rev(ccw.ring().rbegin(), ccw.ring().rend());
  Polygon cw(rev);
  EXPECT_LT(cw.signed_area2(), 0);
  EXPECT_EQ(cw.area(), ccw.area());
}

TEST(Polygon, NormalizedRemovesCollinearAndDuplicates) {
  Polygon messy(std::vector<Point>{
      {0, 0}, {5, 0}, {10, 0}, {10, 10}, {10, 10}, {0, 10}});
  const Polygon n = messy.normalized();
  EXPECT_EQ(n.size(), 4u);
  EXPECT_EQ(n.area(), 100);
  EXPECT_TRUE(n.is_ccw());
}

TEST(Polygon, NormalizedForcesCcw) {
  Polygon cw(std::vector<Point>{{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_TRUE(cw.normalized().is_ccw());
}

TEST(Polygon, NormalizedDegenerateBecomesEmpty) {
  Polygon line(std::vector<Point>{{0, 0}, {5, 0}, {10, 0}});
  EXPECT_TRUE(line.normalized().empty());
}

TEST(Polygon, ContainsInteriorBoundaryExterior) {
  const Polygon p = l_shape();
  EXPECT_TRUE(p.contains({5, 5}));     // interior
  EXPECT_TRUE(p.contains({0, 0}));     // vertex
  EXPECT_TRUE(p.contains({15, 10}));   // on edge
  EXPECT_FALSE(p.contains({15, 15}));  // in the notch
  EXPECT_FALSE(p.contains({-1, 5}));
}

TEST(Polygon, TranslatedAndTransposed) {
  const Polygon p = l_shape();
  EXPECT_EQ(p.translated({100, 200}).bbox(), Rect(100, 200, 120, 220));
  const Polygon t = p.transposed();
  EXPECT_EQ(t.area(), p.area());
  EXPECT_FALSE(t.is_ccw());  // transposition flips orientation
  EXPECT_TRUE(t.contains({5, 5}));
  EXPECT_FALSE(t.contains({15, 15}));
}

TEST(Polygon, IsManhattanRejectsDiagonal) {
  Polygon diag(std::vector<Point>{{0, 0}, {10, 0}, {5, 5}});
  EXPECT_FALSE(diag.is_manhattan());
}

TEST(Polygon, EdgeAtParameter) {
  const Edge e({0, 0}, {10, 0});
  EXPECT_EQ(e.at(0), Point(0, 0));
  EXPECT_EQ(e.at(4), Point(4, 0));
  EXPECT_EQ(e.at(99), Point(10, 0));  // clamps
  EXPECT_EQ(e.at(-5), Point(0, 0));   // clamps
}

}  // namespace
}  // namespace opckit::geom
