#include <cmath>

#include <gtest/gtest.h>

#include "litho/optics.h"
#include "litho/raster.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

OpticalSystem test_optics() {
  OpticalSystem sys;
  sys.wavelength_nm = 248.0;
  sys.na = 0.68;
  sys.source.shape = SourceShape::kAnnular;
  sys.source.sigma_outer = 0.8;
  sys.source.sigma_inner = 0.5;
  sys.source.grid = 5;
  return sys;
}

Frame test_frame(std::size_t n = 256) {
  Frame f;
  f.pixel_nm = 8.0;
  f.nx = n;
  f.ny = n;
  f.origin = {-static_cast<geom::Coord>(n) * 4, -static_cast<geom::Coord>(n) * 4};
  return f;
}

TEST(SourceSampling, CircularContainsCenter) {
  OpticalSystem sys = test_optics();
  sys.source.shape = SourceShape::kCircular;
  sys.source.sigma_outer = 0.6;
  sys.source.grid = 5;
  const auto pts = sample_source(sys);
  EXPECT_GT(pts.size(), 10u);
  double wsum = 0;
  for (const auto& p : pts) wsum += p.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  // All points inside sigma_outer * NA / lambda.
  const double rmax = 0.6 * sys.na / sys.wavelength_nm;
  for (const auto& p : pts) {
    EXPECT_LE(std::hypot(p.fx, p.fy), rmax + 1e-12);
  }
}

TEST(SourceSampling, AnnularExcludesInner) {
  const OpticalSystem sys = test_optics();
  const auto pts = sample_source(sys);
  const double f_na = sys.na / sys.wavelength_nm;
  for (const auto& p : pts) {
    const double r = std::hypot(p.fx, p.fy) / f_na;
    EXPECT_GE(r, sys.source.sigma_inner - 1e-12);
    EXPECT_LE(r, sys.source.sigma_outer + 1e-12);
  }
}

TEST(SourceSampling, DegenerateSpecThrows) {
  OpticalSystem sys = test_optics();
  sys.source.grid = 1;  // single center point, excluded by the annulus
  EXPECT_THROW(sample_source(sys), util::CheckError);
}

TEST(OpticalSystem, DerivedQuantities) {
  const OpticalSystem sys = test_optics();
  EXPECT_NEAR(sys.rayleigh_nm(), 0.61 * 248.0 / 0.68, 1e-9);
  EXPECT_NEAR(sys.k1(180.0), 180.0 * 0.68 / 248.0, 1e-9);
}

TEST(AbbeImager, ClearFieldNormalizesToOne) {
  const Frame f = test_frame(64);
  const AbbeImager imager(test_optics(), f);
  Image mask(f, 1.0);
  const Image img = imager.aerial_image(mask);
  for (double v : img.values()) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(AbbeImager, DarkFieldIsZero) {
  const Frame f = test_frame(64);
  const AbbeImager imager(test_optics(), f);
  Image mask(f, 0.0);
  const Image img = imager.aerial_image(mask);
  for (double v : img.values()) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(AbbeImager, LargeFeatureEdgeIntensityIsKnifeEdge) {
  // The image of a very large bright feature has ~0.25-0.4 intensity at
  // the geometric edge (knife-edge diffraction), approaching 1 deep inside
  // and 0 far outside.
  const Frame f = test_frame(512);
  const AbbeImager imager(test_optics(), f);
  const Region big{Rect(-1900, -2000, 0, 2000)};  // edge at x=0
  const Image img = imager.aerial_image(rasterize(big, f));
  const double inside = img.sample(-1000, 0);
  const double at_edge = img.sample(0, 0);
  const double outside = img.sample(500, 0);
  EXPECT_NEAR(inside, 1.0, 0.08);
  EXPECT_GT(at_edge, 0.2);
  EXPECT_LT(at_edge, 0.45);
  EXPECT_LT(outside, 0.05);
}

TEST(AbbeImager, ImageInheritsMaskSymmetry) {
  const Frame f = test_frame(128);
  const AbbeImager imager(test_optics(), f);
  // Mask symmetric about x=0 (line centered at origin).
  const Region line{Rect(-90, -400, 90, 400)};
  const Image img = imager.aerial_image(rasterize(line, f));
  for (double x : {40.0, 120.0, 200.0}) {
    EXPECT_NEAR(img.sample(x, 0), img.sample(-x, 0), 1e-9) << x;
  }
}

TEST(AbbeImager, DenseGratingShowsModulation) {
  const Frame f = test_frame(256);
  const AbbeImager imager(test_optics(), f);
  std::vector<geom::Rect> lines;
  for (int i = -3; i <= 3; ++i) {
    lines.emplace_back(i * 360 - 90, -800, i * 360 + 90, 800);
  }
  const Image img =
      imager.aerial_image(rasterize(Region::from_rects(lines), f));
  const double on_line = img.sample(0, 0);
  const double on_space = img.sample(180, 0);
  EXPECT_GT(on_line, on_space + 0.2) << "no modulation through 360nm pitch";
}

TEST(AbbeImager, SubResolutionPitchLosesContrast) {
  // Pitch below lambda/(NA(1+sigma_out)) carries no first diffraction
  // order: the image is nearly flat (contrast collapse).
  const Frame f = test_frame(256);
  const AbbeImager imager(test_optics(), f);
  auto contrast_at_pitch = [&](geom::Coord pitch) {
    std::vector<geom::Rect> lines;
    for (int i = -8; i <= 8; ++i) {
      lines.emplace_back(i * pitch - pitch / 4, -800, i * pitch + pitch / 4,
                         800);
    }
    const Image img =
        imager.aerial_image(rasterize(Region::from_rects(lines), f));
    const double on = img.sample(0, 0);
    const double off = img.sample(static_cast<double>(pitch) / 2, 0);
    return (on - off) / (on + off);
  };
  EXPECT_GT(contrast_at_pitch(360), 0.4);
  EXPECT_LT(contrast_at_pitch(160), 0.08);  // < cutoff pitch ~203nm
}

TEST(AbbeImager, DefocusDegradesContrast) {
  const Frame f = test_frame(256);
  const AbbeImager imager(test_optics(), f);
  std::vector<geom::Rect> lines;
  for (int i = -4; i <= 4; ++i) {
    lines.emplace_back(i * 360 - 90, -800, i * 360 + 90, 800);
  }
  const Image mask = rasterize(Region::from_rects(lines), f);
  auto contrast = [&](double z) {
    const Image img = imager.aerial_image(mask, z);
    const double on = img.sample(0, 0);
    const double off = img.sample(180, 0);
    return (on - off) / (on + off);
  };
  const double c0 = contrast(0.0);
  const double c400 = contrast(400.0);
  EXPECT_GT(c0, c400 + 0.05) << "defocus must reduce contrast";
}

TEST(AbbeImager, DefocusIsSymmetric) {
  // Aberration-free scalar model: +z and -z give identical images.
  const Frame f = test_frame(128);
  const AbbeImager imager(test_optics(), f);
  const Region line{Rect(-90, -400, 90, 400)};
  const Image mask = rasterize(line, f);
  const Image plus = imager.aerial_image(mask, 300.0);
  const Image minus = imager.aerial_image(mask, -300.0);
  for (std::size_t i = 0; i < plus.values().size(); ++i) {
    EXPECT_NEAR(plus.values()[i], minus.values()[i], 1e-9);
  }
}

TEST(AbbeImager, RejectsWrongFrame) {
  const AbbeImager imager(test_optics(), test_frame(64));
  Image mask(test_frame(128));
  EXPECT_THROW(imager.aerial_image(mask), util::CheckError);
}

}  // namespace
}  // namespace opckit::litho
