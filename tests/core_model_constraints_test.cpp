/// Tests for the correction-engine constraint machinery: target merging,
/// mask-space caps, tip-gap rules, and corner damping.
#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "geometry/region.h"

namespace opckit::opc {
namespace {

using geom::Coord;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

const litho::SimSpec& calibrated_spec() {
  static const litho::SimSpec spec = [] {
    litho::SimSpec s;
    s.optics.source.grid = 5;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return spec;
}

TEST(MergeTargets, AbuttingRectsBecomeOnePolygon) {
  const std::vector<Polygon> raw{Polygon{Rect(0, 0, 180, 1000)},
                                 Polygon{Rect(0, 1000, 180, 2000)}};
  const auto merged = merge_targets(raw);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].bbox(), Rect(0, 0, 180, 2000));
  EXPECT_EQ(merged[0].size(), 4u);  // internal edge gone
}

TEST(MergeTargets, DisjointStayDisjoint) {
  const std::vector<Polygon> raw{Polygon{Rect(0, 0, 100, 100)},
                                 Polygon{Rect(500, 0, 600, 100)}};
  EXPECT_EQ(merge_targets(raw).size(), 2u);
}

TEST(MergeTargets, HolesRejected) {
  // A frame (donut) produced by overlap: outer ring minus inner.
  const Region donut = Region{Rect(0, 0, 500, 500)}.subtracted(
      Region{Rect(150, 150, 350, 350)});
  const auto polys = donut.polygons();
  ASSERT_EQ(polys.size(), 2u);
  EXPECT_THROW(merge_targets(polys), util::CheckError);
}

TEST(MergeTargets, DegenerateRejected) {
  const Polygon line(std::vector<Point>{{0, 0}, {10, 0}, {20, 0}});
  EXPECT_THROW(merge_targets({line}), util::CheckError);
}

TEST(ModelOpcConstraints, AbuttingInputEqualsPreMergedInput) {
  const std::vector<Polygon> abutting{Polygon{Rect(-90, -1500, 90, 0)},
                                      Polygon{Rect(-90, 0, 90, 1500)}};
  const std::vector<Polygon> merged{Polygon{Rect(-90, -1500, 90, 1500)}};
  const Rect window(-400, -800, 400, 800);
  ModelOpcSpec spec;
  spec.max_iterations = 6;
  const auto a = run_model_opc(abutting, calibrated_spec(), window, spec);
  const auto b = run_model_opc(merged, calibrated_spec(), window, spec);
  ASSERT_EQ(a.corrected.size(), b.corrected.size());
  for (std::size_t i = 0; i < a.corrected.size(); ++i) {
    EXPECT_EQ(a.corrected[i], b.corrected[i]);
  }
}

TEST(ModelOpcConstraints, TipGapNeverShrinksBelowFloor) {
  // Facing line-ends, drawn gap 300: each tip may extend at most
  // (300 - min_tip_gap)/2.
  const std::vector<Polygon> targets{Polygon{Rect(-90, -2500, 90, -150)},
                                     Polygon{Rect(-90, 150, 90, 2500)}};
  const Rect window(-400, -900, 400, 900);
  ModelOpcSpec spec;
  spec.max_iterations = 8;
  spec.min_tip_gap_nm = 220;
  const auto r = run_model_opc(targets, calibrated_spec(), window, spec);
  const Region mask = Region::from_polygons(r.corrected);
  // The mask gap along the tip axis stays >= 220.
  Coord top_of_lower = -10000, bottom_of_upper = 10000;
  for (const auto& rect : mask.rects()) {
    if (rect.hi.y <= 0 && rect.lo.x < 90 && rect.hi.x > -90) {
      top_of_lower = std::max(top_of_lower, rect.hi.y);
    }
    if (rect.lo.y >= 0 && rect.lo.x < 90 && rect.hi.x > -90) {
      bottom_of_upper = std::min(bottom_of_upper, rect.lo.y);
    }
  }
  EXPECT_GE(bottom_of_upper - top_of_lower, 220);
  // And both tips did extend (pullback correction happened).
  EXPECT_LT(top_of_lower, -110);
  EXPECT_LT(bottom_of_upper, 150);
}

TEST(ModelOpcConstraints, SideSpaceRespectsMaskSpaceFloor) {
  // Two parallel lines, drawn space 320: outward side moves are capped
  // so the mask space never dips below min_mask_space_nm.
  const std::vector<Polygon> targets{Polygon{Rect(-250, -1500, -70, 1500)},
                                     Polygon{Rect(250, -1500, 430, 1500)}};
  const Rect window(-500, -800, 700, 800);
  ModelOpcSpec spec;
  spec.max_iterations = 8;
  spec.min_mask_space_nm = 140;
  const auto r = run_model_opc(targets, calibrated_spec(), window, spec);
  const Region mask = Region::from_polygons(r.corrected);
  // No mask area may intrude into the central guaranteed corridor
  // [-70 + cap, 250 - cap] where cap = (320-140)/2 = 90.
  const Region corridor{Rect(-70 + 90, -1500, 250 - 90, 1500)};
  EXPECT_TRUE(mask.intersected(corridor).empty());
}

TEST(ModelOpcConstraints, CornerOffsetsStayWithinCornerClamp) {
  const Polygon l(std::vector<Point>{
      {0, 0}, {1500, 0}, {1500, 400}, {400, 400}, {400, 1500}, {0, 1500}});
  const Rect window(-200, -200, 1700, 1700);
  ModelOpcSpec spec;
  spec.max_iterations = 8;
  spec.corner_max_offset = 36;
  const auto r = run_model_opc({l.normalized()}, calibrated_spec(), window,
                               spec);
  for (const auto& f : r.fragments) {
    if (f.kind == FragmentKind::kCorner) {
      EXPECT_LE(std::abs(f.offset), 36) << "corner fragment over-travelled";
    }
  }
}

TEST(ModelOpcConstraints, HistoryTracksCornerEpeSeparately) {
  const Polygon l(std::vector<Point>{
      {0, 0}, {1500, 0}, {1500, 400}, {400, 400}, {400, 1500}, {0, 1500}});
  const Rect window(-200, -200, 1700, 1700);
  ModelOpcSpec spec;
  spec.max_iterations = 4;
  spec.epe_tolerance_nm = 0.0;
  const auto r = run_model_opc({l.normalized()}, calibrated_spec(), window,
                               spec);
  // Corner sites keep a rounding residual larger than the run residual.
  const auto& last = r.final_iteration();
  EXPECT_GT(last.max_abs_epe_corner_nm, last.rms_epe_nm);
  EXPECT_GT(last.max_abs_epe_corner_nm, 5.0);
}

}  // namespace
}  // namespace opckit::opc
