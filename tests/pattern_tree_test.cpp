#include <gtest/gtest.h>

#include "layout/generators.h"
#include "pattern/tree.h"

namespace opckit::pat {
namespace {

using geom::Polygon;
using geom::Rect;

std::vector<Polygon> mixed_layout() {
  util::Rng rng(17);
  layout::Cell cell("rb");
  layout::RandomBlockSpec rb;
  rb.width = 9000;
  rb.height = 9000;
  layout::add_random_block(cell, layout::layers::kMetal1, rb, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  return {shapes.begin(), shapes.end()};
}

TEST(PatternTree, LevelsMatchRadii) {
  const PatternTree tree(mixed_layout(), {200, 400, 800});
  EXPECT_EQ(tree.radii().size(), 3u);
  EXPECT_GT(tree.classes_at(0), 0u);
  EXPECT_GT(tree.classes_at(1), 0u);
  EXPECT_GT(tree.classes_at(2), 0u);
}

TEST(PatternTree, ClassCountGrowsWithRadius) {
  // More context discriminates more patterns (monotone refinement).
  const PatternTree tree(mixed_layout(), {200, 400, 800});
  EXPECT_LE(tree.classes_at(0), tree.classes_at(1));
  EXPECT_LE(tree.classes_at(1), tree.classes_at(2));
}

TEST(PatternTree, ParentChildConsistency) {
  const PatternTree tree(mixed_layout(), {200, 500});
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    const auto& node = tree.nodes()[i];
    if (node.level == 0) {
      EXPECT_EQ(node.parent, SIZE_MAX);
    } else {
      ASSERT_LT(node.parent, tree.nodes().size());
      const auto& parent = tree.nodes()[node.parent];
      EXPECT_EQ(parent.level, node.level - 1);
      EXPECT_NE(std::find(parent.children.begin(), parent.children.end(), i),
                parent.children.end());
    }
  }
}

TEST(PatternTree, ParentCountsAggregateChildren) {
  const PatternTree tree(mixed_layout(), {200, 500});
  for (std::size_t i : tree.level_nodes(0)) {
    const auto& node = tree.nodes()[i];
    std::size_t child_total = 0;
    for (std::size_t c : node.children) {
      child_total += tree.nodes()[c].count;
    }
    EXPECT_EQ(node.count, child_total) << "node " << i;
  }
}

TEST(PatternTree, RefinementFactorAtLeastOne) {
  const PatternTree tree(mixed_layout(), {200, 400, 800});
  EXPECT_GE(tree.refinement_factor(0), 1.0);
  EXPECT_GE(tree.refinement_factor(1), 1.0);
}

TEST(PatternTree, PeriodicLayoutSaturatesFasterThanRandom) {
  // A grating's pattern population grows much more slowly with radius
  // than a random block's: extra context stops discriminating once it
  // spans a full period (the optimal-context-size criterion).
  std::vector<Polygon> grating;
  for (int i = 0; i < 16; ++i) {
    grating.emplace_back(Rect(i * 360, 0, i * 360 + 180, 8000));
  }
  const std::vector<geom::Coord> radii{400, 800, 1600};
  const PatternTree periodic(grating, radii);
  const PatternTree random(mixed_layout(), radii);
  // The periodic layout's class population stays small at every level
  // (interior repeats fold into a handful of classes, plus a few boundary
  // variants); the random block's explodes.
  EXPECT_LE(periodic.classes_at(2), 20u);
  EXPECT_GT(random.classes_at(2), 2 * periodic.classes_at(2));
  // And the saturation criterion picks a valid level.
  EXPECT_LT(periodic.saturation_level(0.5), radii.size());
}

TEST(PatternTree, RejectsBadRadii) {
  EXPECT_THROW(PatternTree(mixed_layout(), {}), util::CheckError);
  EXPECT_THROW(PatternTree(mixed_layout(), {400, 200}), util::CheckError);
}

}  // namespace
}  // namespace opckit::pat
