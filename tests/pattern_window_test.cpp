#include <gtest/gtest.h>

#include "pattern/window.h"

namespace opckit::pat {
namespace {

using geom::Polygon;
using geom::Rect;
using geom::Region;

TEST(Windows, CornerAnchorsOnePerDistinctVertex) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)}};
  WindowSpec spec;
  spec.radius = 50;
  const auto windows = extract_windows(polys, spec);
  EXPECT_EQ(windows.size(), 4u);
}

TEST(Windows, SharedVertexDeduplicated) {
  // Two rects sharing a corner vertex: 7 distinct corners, not 8.
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)},
                                   Polygon{Rect(100, 100, 200, 200)}};
  WindowSpec spec;
  spec.radius = 50;
  const auto windows = extract_windows(polys, spec);
  EXPECT_EQ(windows.size(), 7u);
}

TEST(Windows, GeometryIsLocalAndClipped) {
  const std::vector<Polygon> polys{Polygon{Rect(1000, 1000, 1100, 1100)}};
  WindowSpec spec;
  spec.radius = 30;
  const auto windows = extract_windows(polys, spec);
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) {
    const Rect box = w.geometry.bbox();
    EXPECT_GE(box.lo.x, -30);
    EXPECT_GE(box.lo.y, -30);
    EXPECT_LE(box.hi.x, 30);
    EXPECT_LE(box.hi.y, 30);
    // Anchor is a corner of the rect, so the local clip covers a quarter.
    EXPECT_EQ(w.geometry.area(), 30 * 30);
  }
}

TEST(Windows, GridAnchorsCoverExtent) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 1600, 1600)}};
  WindowSpec spec;
  spec.radius = 100;
  spec.anchors = AnchorKind::kGrid;
  spec.grid_step = 800;
  const auto windows = extract_windows(polys, spec);
  EXPECT_EQ(windows.size(), 9u);  // 3x3 grid over 1600x1600
}

TEST(Windows, SkipEmptyDropsBlankWindows) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 100, 100)}};
  WindowSpec spec;
  spec.radius = 20;
  spec.anchors = AnchorKind::kGrid;
  spec.grid_step = 5000;  // anchors far from geometry
  spec.skip_empty = true;
  const auto some = extract_windows(polys, spec);
  spec.skip_empty = false;
  const auto all = extract_windows(polys, spec);
  EXPECT_LT(some.size(), all.size() + 1);
  for (const auto& w : some) EXPECT_FALSE(w.geometry.empty());
}

TEST(Windows, EmptyLayoutYieldsNoWindows) {
  WindowSpec spec;
  EXPECT_TRUE(extract_windows({}, spec).empty());
}

}  // namespace
}  // namespace opckit::pat
