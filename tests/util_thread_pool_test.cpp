#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace opckit::util {
namespace {

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleIteration) {
  ThreadPool pool(8);
  std::atomic<int> n{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, MoreWorkThanThreads) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for(10000,
                    [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  global_pool().parallel_for(64, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 64);
}

}  // namespace
}  // namespace opckit::util
