#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace opckit::util {
namespace {

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleIteration) {
  ThreadPool pool(8);
  std::atomic<int> n{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, MoreWorkThanThreads) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for(10000,
                    [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  global_pool().parallel_for(64, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A worker issuing its own parallel_for must run it inline instead of
  // queueing (queueing from a worker can deadlock a saturated pool).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(50, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPool, NestedOnAnotherPoolAlsoRunsInline) {
  // tl_pool_worker is pool-agnostic: a worker of pool A must not block
  // inside pool B either, since B's workers may themselves be waiting.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(6, [&](std::size_t) {
    inner.parallel_for(40, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 6 * 40);
}

TEST(ThreadPool, ConcurrentExternalCallersShareOnePool) {
  // Several non-worker threads driving the same pool at once: each call's
  // completion record is stack-local, so waits must not cross-talk.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kCount = 500;
  std::atomic<long long> sum{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      pool.parallel_for(kCount, [&](std::size_t i) {
        sum += static_cast<long long>(i);
      });
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(sum.load(), kCallers * (kCount * (kCount - 1) / 2));
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(20, [&](std::size_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
  // Pool must stay healthy afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(32, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, StressRepeatedConcurrentAndNestedUse) {
  // Hammer the completion-handshake under TSan: concurrent external
  // callers, each issuing nested calls, across several rounds.
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> total{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&] {
        pool.parallel_for(16, [&](std::size_t) {
          pool.parallel_for(8, [&](std::size_t) { ++total; });
        });
      });
    }
    for (auto& c : callers) c.join();
    EXPECT_EQ(total.load(), 4 * 16 * 8);
  }
}

TEST(ThreadPool, SubmitRunsFireAndForgetJobs) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == 16; });
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, SubmitPriorityOrdersQueuedJobs) {
  // One worker; a gate job holds it so everything else queues up. Once
  // released, the queue must drain highest-priority first, FIFO within
  // a priority level.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool gate_running = false;
  std::vector<int> order;
  bool done = false;

  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    gate_running = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    // Wait until the gate OWNS the worker, so later submits can't sneak
    // ahead of it.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_running; });
  }

  auto tagged = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  pool.submit(tagged(0), /*priority=*/0);
  pool.submit(tagged(5), /*priority=*/5);
  pool.submit(tagged(-3), /*priority=*/-3);
  pool.submit(tagged(50), /*priority=*/5);  // same level as 5: FIFO after it
  pool.submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        done = true;
        cv.notify_all();
      },
      /*priority=*/-100);  // lowest: runs last, acts as the drain latch

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(order, (std::vector<int>{5, 50, 0, -3}));
}

TEST(ThreadPool, ParallelForOutranksQueuedSubmits) {
  // parallel_for chunks are queued above every submit() priority so a
  // blocking caller can't be starved by a deep backlog of submitted jobs.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool gate_running = false;
  std::atomic<int> submits_done{0};

  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    gate_running = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_running; });
  }
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { ++submits_done; }, /*priority=*/1000);
  }

  std::thread releaser([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  });
  std::atomic<int> chunks{0};
  pool.parallel_for(4, [&](std::size_t) { ++chunks; });
  releaser.join();
  EXPECT_EQ(chunks.load(), 4);
  // The parallel_for completed even though high-priority submits were
  // queued first; drain the rest before the pool goes away.
  while (submits_done.load() < 8) std::this_thread::yield();
}

}  // namespace
}  // namespace opckit::util
