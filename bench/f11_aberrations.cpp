/// F11 — aberration sensitivity (extension).
///
/// What OPC cannot fix: lens aberrations vary across the slit/field, so a
/// single mask correction cannot cancel them. Reported: printed-line
/// shift vs coma (an overlay-budget eater) and H-vs-V CD difference vs
/// astigmatism at fixed focus. Expected shape: both grow ~linearly with
/// the aberration coefficient; a few nm of wavefront error eats a
/// meaningful fraction of the 1990s-era overlay/CD budgets.
#include <cmath>

#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

double line_shift(const litho::Image& lat, double thr) {
  const double r =
      litho::edge_placement_error(lat, {90, 0}, {1, 0}, 80.0, thr);
  const double l =
      litho::edge_placement_error(lat, {-90, 0}, {-1, 0}, 80.0, thr);
  return (r - l) / 2.0;
}

}  // namespace

int main() {
  litho::SimSpec process = exp::calibrated_process();

  // Coma: probe with a sigma-0.5 circular source (broad annular
  // illumination averages the tilt-balanced Z7 shift away — itself a
  // finding the table's annular column demonstrates). The iso vs dense
  // split is the damaging part: the shift is pattern-dependent, so no
  // single overlay correction can remove it.
  litho::SimSpec coherent = process;
  coherent.optics.source.shape = litho::SourceShape::kCircular;
  coherent.optics.source.sigma_outer = 0.5;
  litho::calibrate_threshold(coherent, 180, 360);

  util::Table coma({"coma_x_nm", "iso_shift_nm", "dense_shift_nm",
                    "iso_shift_annular_nm"});
  for (double c : {0.0, 5.0, 10.0, 20.0, 30.0}) {
    litho::SimSpec spec = coherent;
    spec.optics.aberrations.coma_x_nm = c;
    const litho::Simulator sim(spec, geom::Rect(-500, -600, 500, 600));
    const litho::Image lat =
        sim.latent(geom::Region{geom::Rect(-90, -2000, 90, 2000)});
    const double iso = line_shift(lat, sim.threshold());
    const litho::Image lat_d = sim.latent(
        geom::Region::from_polygons(exp::grating(180, 360)));
    const double dense = line_shift(lat_d, sim.threshold());

    litho::SimSpec ann = process;
    ann.optics.aberrations.coma_x_nm = c;
    const litho::Simulator sim_a(ann, geom::Rect(-500, -600, 500, 600));
    const litho::Image lat_a =
        sim_a.latent(geom::Region{geom::Rect(-90, -2000, 90, 2000)});
    coma.add_row(c, iso, dense, line_shift(lat_a, sim_a.threshold()));
  }
  exp::emit("F11",
            "pattern shift vs coma (sigma-0.5 circular; last col annular)",
            coma);

  util::Table astig({"astig_nm", "cd_vertical_nm", "cd_horizontal_nm",
                     "hv_delta_nm"});
  for (double a : {0.0, 10.0, 20.0, 30.0}) {
    litho::SimSpec spec = process;
    spec.optics.aberrations.astig_nm = a;
    const geom::Rect window(-720, -720, 720, 720);
    const litho::Simulator sim(spec, window);
    auto cd_of = [&](bool vertical) {
      std::vector<geom::Rect> lines;
      for (int i = -3; i <= 3; ++i) {
        const geom::Coord c = i * 360;
        lines.push_back(vertical
                            ? geom::Rect(c - 90, -2000, c + 90, 2000)
                            : geom::Rect(-2000, c - 90, 2000, c + 90));
      }
      const litho::Image lat =
          sim.latent(geom::Region::from_rects(lines), 150.0);
      return vertical ? litho::printed_cd(lat, {0, 0}, {1, 0}, 360.0,
                                          sim.threshold())
                      : litho::printed_cd(lat, {0, 0}, {0, 1}, 360.0,
                                          sim.threshold());
    };
    const double v = cd_of(true);
    const double h = cd_of(false);
    astig.add_row(a, v, h, v - h);
  }
  exp::emit("F11b",
            "H-V CD split vs astigmatism (dense 180nm, 150nm defocus)",
            astig);
  return 0;
}
