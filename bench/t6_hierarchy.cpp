/// T6 — hierarchy impact: cell-level vs flat OPC.
///
/// A 3x3 chip of one cell is corrected two ways: once per distinct cell
/// (hierarchy preserved, context across boundaries ignored) and once per
/// placement with true context (flat). Reports cost (OPC runs,
/// simulations), output data volume (hierarchical GDSII vs flat GDSII),
/// and accuracy (EPE of each mask evaluated in full-chip context).
/// Expected shape: cell-level is ~9x cheaper and keeps ~9x data
/// compression, but its worst-case boundary EPE is worse — the exact
/// tradeoff that killed naive hierarchical OPC as pitches shrank.
#include <cmath>

#include "exp_common.h"

int main() {
  using namespace opckit;

  opc::FlowSpec flow;
  flow.sim = exp::calibrated_process();
  flow.opc.max_iterations = 8;
  flow.input_layer = layout::layers::kPoly;
  flow.output_layer = layout::layers::kPolyOpc;

  auto make_chip = [] {
    layout::Library lib("t6");
    layout::Cell& leaf = lib.cell("leaf");
    leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 2000));
    leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 2000));
    leaf.add_rect(layout::layers::kPoly, geom::Rect(1080, 0, 1260, 2000));
    // Tight chip spacing: boundary lines of one placement are dense with
    // the next placement's lines, so isolation is a real error.
    layout::make_chip(lib, "chip", "leaf", 3, 3, {1620, 2400});
    return lib;
  };

  layout::Library lib_cell = make_chip();
  const opc::FlowStats cell_stats = run_cell_opc(lib_cell, "chip", flow);
  layout::Library lib_flat = make_chip();
  const opc::FlowStats flat_stats = run_flat_opc(lib_flat, "chip", flow);

  util::Table cost({"flow", "opc_runs", "simulations", "output_polygons",
                    "gdsii_bytes"});
  // Hierarchical output keeps refs; flat output is all in the top cell.
  const std::size_t cell_bytes = layout::gdsii_byte_size(lib_cell);
  const std::size_t flat_bytes = layout::gdsii_byte_size(lib_flat);
  cost.add_row(std::string("cell_level"), cell_stats.opc_runs,
               cell_stats.simulations, cell_stats.corrected_polygons,
               cell_bytes);
  cost.add_row(std::string("flat"), flat_stats.opc_runs,
               flat_stats.simulations, flat_stats.corrected_polygons,
               flat_bytes);
  exp::emit("T6", "hierarchical vs flat OPC: cost and data volume", cost);

  // Accuracy: evaluate both masks in true chip context on the center
  // placement and a boundary-adjacent placement.
  const auto targets = lib_cell.flatten("chip", layout::layers::kPoly);
  const auto mask_cell = lib_cell.flatten("chip", flow.output_layer);
  const auto mask_flat = lib_flat.flatten("chip", flow.output_layer);

  const opc::FragmentationSpec sampling;
  const std::vector<geom::Polygon> norm_targets =
      opc::merge_targets(targets);
  const auto frags = opc::fragment_polygons(norm_targets, sampling);
  // Score the center placement in full chip context. The scoring
  // simulator needs a guard band that swallows every neighbour within
  // optical reach — otherwise context clipping biases the comparison.
  const geom::Rect score_window(1620, 2400, 1620 + 1260, 2400 + 2000);
  litho::SimSpec score_sim = flow.sim;
  score_sim.guard_nm = 1600;

  // Corner sites measure corner rounding (common to both flows) and are
  // reported separately so they don't drown the placement-accuracy signal.
  util::Table acc({"flow", "sites", "rms_epe_nm", "max_abs_epe_nm",
                   "max_corner_epe_nm"});
  for (const auto& [name, mask] :
       std::vector<std::pair<std::string, std::vector<geom::Polygon>>>{
           {"cell_level", mask_cell}, {"flat", mask_flat}}) {
    const auto epes = opc::measure_fragment_epe(norm_targets, frags, mask,
                                                score_sim, score_window);
    double sum_sq = 0;
    std::size_t n = 0;
    double max_abs = 0, max_corner = 0;
    for (std::size_t i = 0; i < epes.size(); ++i) {
      const geom::Point site =
          eval_point(norm_targets[frags[i].polygon], frags[i]);
      if (!score_window.contains(site) || std::isnan(epes[i])) continue;
      if (frags[i].kind == opc::FragmentKind::kCorner) {
        max_corner = std::max(max_corner, std::abs(epes[i]));
        continue;
      }
      ++n;
      sum_sq += epes[i] * epes[i];
      max_abs = std::max(max_abs, std::abs(epes[i]));
    }
    acc.add_row(name, n, n ? std::sqrt(sum_sq / static_cast<double>(n)) : 0.0,
                max_abs, max_corner);
  }
  exp::emit("T6b",
            "mask accuracy in true chip context (center placement)", acc);
  return 0;
}
