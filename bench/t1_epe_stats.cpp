/// T1 — edge-placement-error statistics by correction flavor.
///
/// EPE distribution (mean / sigma / max|EPE| / % within ±10nm) over all
/// fragment metrology sites of a logic cell, for: no OPC, rule OPC, and
/// model OPC. Expected shape: none is biased negative (underprint) with a
/// heavy tail at line ends; rule fixes the mean but leaves 2D tails;
/// model pulls everything inside spec.
#include <cmath>

#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("t1");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  const opc::FragmentationSpec sampling;
  const std::vector<geom::Polygon> merged = opc::merge_targets(target);
  const auto frags = opc::fragment_polygons(merged, sampling);

  const opc::RuleDeck deck = opc::default_rule_deck_180();
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 12;

  struct Flavor {
    std::string name;
    std::vector<geom::Polygon> mask;
  };
  const std::vector<Flavor> flavors{
      {"none", target},
      {"rule", opc::apply_rule_opc(target, deck).corrected},
      {"model", opc::run_model_opc(target, process, window, mspec).corrected},
  };

  // Corner sites measure corner rounding (own spec, cannot be zeroed by
  // edge movement) and are reported separately from run/line-end sites.
  util::Table table({"flavor", "run_sites", "mean_epe_nm", "sigma_nm",
                     "max_abs_nm", "pct_within_10nm", "corner_max_nm",
                     "lost_edges"});
  for (const auto& flavor : flavors) {
    const auto epes = opc::measure_fragment_epe(merged, frags, flavor.mask,
                                                process, window);
    util::Accumulator acc;
    std::size_t in_spec = 0, lost = 0, sites = 0;
    double corner_max = 0.0;
    for (std::size_t i = 0; i < epes.size(); ++i) {
      const geom::Point site = eval_point(merged[frags[i].polygon], frags[i]);
      if (!window.contains(site)) continue;
      if (std::isnan(epes[i])) {
        ++lost;
        continue;
      }
      if (frags[i].kind == opc::FragmentKind::kCorner) {
        corner_max = std::max(corner_max, std::abs(epes[i]));
        continue;
      }
      ++sites;
      acc.add(epes[i]);
      if (std::abs(epes[i]) <= 10.0) ++in_spec;
    }
    table.add_row(flavor.name, sites, acc.mean(), acc.stddev(), acc.max_abs(),
                  100.0 * static_cast<double>(in_spec) /
                      static_cast<double>(sites),
                  corner_max, lost);
  }

  exp::emit("T1",
            "EPE statistics on a logic cell (run/line-end spec |EPE|<=10nm)",
            table);
  return 0;
}
