/// F10 — dipole illumination and double-dipole lithography (extension).
///
/// A dipole source maximizes contrast for one line orientation and kills
/// the other; double-dipole lithography splits the layout into vertical
/// and horizontal parts and exposes each with its matched dipole, the
/// resist integrating both doses. Reported: grating contrast per
/// orientation under annular vs dipole illumination, and a two-exposure
/// cross pattern (H+V lines) printed by DDL vs a single annular exposure.
#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

litho::SimSpec dipole_spec(litho::SourceShape shape) {
  litho::SimSpec spec;
  spec.optics.source.shape = shape;
  spec.optics.source.pole_center = 0.65;
  spec.optics.source.pole_radius = 0.20;
  return spec;
}

/// Aerial-image modulation (Imax-Imin)/(Imax+Imin) across the grating.
double grating_contrast(const litho::SimSpec& spec,
                        const std::vector<geom::Polygon>& mask,
                        bool vertical_lines, geom::Coord pitch) {
  const geom::Rect window(-2 * pitch, -2 * pitch, 2 * pitch, 2 * pitch);
  const litho::Simulator sim(spec, window);
  const litho::Image lat = sim.latent(mask);
  const double on = lat.sample(0, 0);
  const double off = vertical_lines
                         ? lat.sample(static_cast<double>(pitch) / 2, 0)
                         : lat.sample(0, static_cast<double>(pitch) / 2);
  return (on - off) / (on + off);
}

std::vector<geom::Polygon> lines(geom::Coord pitch, bool vertical) {
  std::vector<geom::Polygon> out;
  for (int i = -4; i <= 4; ++i) {
    const geom::Coord c = static_cast<geom::Coord>(i) * pitch;
    out.emplace_back(vertical ? geom::Rect(c - 90, -2000, c + 90, 2000)
                              : geom::Rect(-2000, c - 90, 2000, c + 90));
  }
  return out;
}

}  // namespace

int main() {
  const geom::Coord pitch = 300;  // tight: below annular comfort zone
  litho::SimSpec annular;  // default production source
  const litho::SimSpec dipole_x = dipole_spec(litho::SourceShape::kDipoleX);
  const litho::SimSpec dipole_y = dipole_spec(litho::SourceShape::kDipoleY);

  util::Table contrast({"grating", "annular", "dipole_x", "dipole_y"});
  for (const bool vertical : {true, false}) {
    const auto mask = lines(pitch, vertical);
    contrast.add_row(std::string(vertical ? "vertical_lines"
                                          : "horizontal_lines"),
                     grating_contrast(annular, mask, vertical, pitch),
                     grating_contrast(dipole_x, mask, vertical, pitch),
                     grating_contrast(dipole_y, mask, vertical, pitch));
  }
  exp::emit("F10",
            "latent-image contrast, 300nm-pitch gratings (180nm-node "
            "stress)",
            contrast);

  // DDL on a cross pattern: vertical lines + horizontal lines overlaid.
  // Decomposition: V-parts exposed with dipole X, H-parts with dipole Y.
  const auto v_mask = geom::Region::from_polygons(lines(pitch, true));
  const auto h_mask = geom::Region::from_polygons(lines(pitch, false));
  const geom::Region cross = v_mask.united(h_mask);
  const geom::Rect window(-600, -600, 600, 600);

  // Single-exposure annular reference.
  litho::SimSpec single = annular;
  litho::calibrate_threshold(single, 180, 360);
  const litho::Simulator sim_single(single, window);
  const litho::Image lat_single = sim_single.latent(cross);

  // DDL: two exposures, 50/50 dose.
  const litho::Image lat_ddl = litho::double_exposure_latent(
      dipole_x, v_mask, dipole_y, h_mask, window);
  // Threshold for DDL calibrated on the same anchor concept: use the
  // image value at the line-center/space midpoint to normalize — report
  // raw modulation instead of CD to stay model-agnostic.
  auto modulation = [](const litho::Image& lat, double px, double py,
                       double sx, double sy) {
    const double on = lat.sample(px, py);
    const double off = lat.sample(sx, sy);
    return (on - off) / (on + off);
  };
  util::Table ddl({"exposure", "v_line_modulation", "h_line_modulation"});
  ddl.add_row(std::string("single_annular"),
              modulation(lat_single, 0, pitch / 2.0, pitch / 2.0,
                         pitch / 2.0),
              modulation(lat_single, pitch / 2.0, 0, pitch / 2.0,
                         pitch / 2.0));
  ddl.add_row(std::string("ddl_two_exposure"),
              modulation(lat_ddl, 0, pitch / 2.0, pitch / 2.0, pitch / 2.0),
              modulation(lat_ddl, pitch / 2.0, 0, pitch / 2.0, pitch / 2.0));
  exp::emit("F10b", "cross pattern (V+H lines): single vs DDL", ddl);
  return 0;
}
