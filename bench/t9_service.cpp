/// T9 — opcd daemon throughput and the hot cross-job cache effect.
///
/// The service premise: OPC jobs arriving at a long-running daemon share
/// kernel sets, FFT plans, and a pattern-correction library, so a job
/// mix replayed against a warm daemon should cost almost nothing. This
/// experiment boots an in-process opcd on a unix socket, drives a mixed
/// job stream (three distinct chips, several submissions each) from four
/// concurrent client threads, and repeats the identical mix a second
/// time. Reported per round: sustained req/s, p50/p99 job latency (from
/// the daemon's own svc.job_latency_ms histogram — the same
/// histogram_quantile interpolation documented in util/stats.h), and the
/// correction-cache hit ratio.
///
/// Output: the usual text table, plus BENCH_t9.json (path overridable as
/// argv[1]). Acceptance, enforced as exit status:
///  * round 2's cache-hit ratio must be measurably higher than round 1's
///    (the hot-library claim), and
///  * the daemon's output for a representative job must be byte-identical
///    to the same flow run directly in this process (the correctness
///    claim that makes the speed claim meaningful).
///
/// The flow spec is deliberately light (coarse source grid, two OPC
/// iterations): T9 measures service behavior — admission, concurrency,
/// cache reuse — not imaging cost, which T3 already characterizes.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/flow.h"
#include "exp_common.h"
#include "layout/gdsii.h"
#include "layout/generators.h"
#include "service/client.h"
#include "service/server.h"
#include "service/socket.h"
#include "trace/metrics.h"

namespace {

using namespace opckit;
using Clock = std::chrono::steady_clock;

opc::FlowSpec service_flow() {
  opc::FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 2;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Chip variant \p k: a repeated leaf whose bar geometry differs per
/// variant, so each chip contributes its own pattern classes to the
/// shared library while all placements within a chip replay.
std::string write_chip(const std::string& dir, int k) {
  layout::Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  const geom::Coord w = 180 + 60 * static_cast<geom::Coord>(k);
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, w, 1200));
  leaf.add_rect(layout::layers::kPoly,
                geom::Rect(w + 360, 0, 2 * w + 360, 1200));
  layout::make_chip(lib, "top", "leaf", 2, 2, {4000, 4000});
  const std::string path = dir + "/chip" + std::to_string(k) + ".gds";
  layout::write_gdsii_file(lib, path);
  return path;
}

struct RoundStats {
  double wall_ms = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_t9.json";
  const std::string dir =
      (std::filesystem::temp_directory_path() / "opckit_t9").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  constexpr int kChips = 3;
  constexpr int kSubmitsPerChip = 4;
  constexpr int kClients = 4;
  constexpr int kJobs = kChips * kSubmitsPerChip;

  std::vector<std::string> inputs;
  for (int k = 0; k < kChips; ++k) inputs.push_back(write_chip(dir, k));
  const opc::FlowSpec spec = service_flow();

  svc::ServerOptions opts;
  opts.unix_path = dir + "/t9.sock";
  opts.workers = kClients;
  svc::Server server(std::move(opts));
  server.start();

  const auto run_round = [&](int round) {
    RoundStats rs;
    const trace::MetricsSnapshot before = trace::metrics().snapshot();
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        // Jobs round-robin over the chip variants, striped per client.
        for (int j = c; j < kJobs; j += kClients) {
          svc::Client client(svc::connect_unix(dir + "/t9.sock"));
          svc::SubmitMsg msg;
          msg.flow = 0;
          msg.in_path = inputs[static_cast<std::size_t>(j % kChips)];
          msg.out_path = dir + "/out_r" + std::to_string(round) + "_j" +
                         std::to_string(j) + ".gds";
          msg.spec = spec;
          const svc::Client::Outcome out = client.run_job(msg);
          if (!out.accepted || !out.result.ok) {
            std::cerr << "t9: job " << j << " failed: "
                      << (out.accepted ? out.result.payload
                                       : out.rejected.message)
                      << '\n';
            std::exit(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const auto t1 = Clock::now();
    const trace::MetricsSnapshot after = trace::metrics().snapshot();
    const trace::MetricsSnapshot d = trace::MetricsSnapshot::delta(before, after);

    rs.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    rs.completed = d.counters.at(trace::metric::kSvcJobsCompleted);
    rs.req_per_s =
        static_cast<double>(rs.completed) / (rs.wall_ms / 1000.0);
    const trace::HistogramSnapshot& lat =
        d.histograms.at(trace::metric::kSvcJobLatencyMs);
    rs.p50_ms = lat.quantile(0.5);
    rs.p99_ms = lat.quantile(0.99);
    const auto hits =
        static_cast<double>(d.counters.at(trace::metric::kSvcCacheHits));
    const auto lookups =
        static_cast<double>(d.counters.at(trace::metric::kSvcCacheLookups));
    rs.hit_ratio = lookups > 0.0 ? hits / lookups : 0.0;
    return rs;
  };

  const RoundStats r1 = run_round(1);
  const RoundStats r2 = run_round(2);
  server.stop();

  // Correctness anchor: the daemon's round-2 output for chip 0 must be
  // byte-identical to the same flow run directly in this process.
  layout::Library direct = layout::read_gdsii_file(inputs[0]);
  opc::run_flat_opc(direct, "top", service_flow());
  const std::string direct_path = dir + "/direct0.gds";
  layout::write_gdsii_file(direct, direct_path);
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const bool byte_identical =
      slurp(direct_path) == slurp(dir + "/out_r2_j0.gds");

  util::Table table({"round", "jobs", "wall_ms", "req_per_s", "p50_ms",
                     "p99_ms", "cache_hit_ratio"});
  std::ostringstream json;
  json << "{\"experiment\":\"t9_service\",\"clients\":" << kClients
       << ",\"rounds\":[";
  bool first = true;
  for (const auto* rs : {&r1, &r2}) {
    const int round = rs == &r1 ? 1 : 2;
    table.add_row(round, static_cast<long long>(rs->completed), rs->wall_ms,
                  rs->req_per_s, rs->p50_ms, rs->p99_ms, rs->hit_ratio);
    json << (first ? "" : ",") << "{\"round\":" << round
         << ",\"jobs\":" << rs->completed
         << ",\"wall_ms\":" << util::format_double(rs->wall_ms)
         << ",\"req_per_s\":" << util::format_double(rs->req_per_s)
         << ",\"p50_ms\":" << util::format_double(rs->p50_ms)
         << ",\"p99_ms\":" << util::format_double(rs->p99_ms)
         << ",\"cache_hit_ratio\":" << util::format_double(rs->hit_ratio)
         << "}";
    first = false;
  }
  json << "],\"byte_identical\":" << (byte_identical ? "true" : "false")
       << "}\n";

  opckit::exp::emit("T9",
                    "opcd daemon throughput and hot cross-job cache reuse",
                    table);
  std::ofstream(json_path) << json.str();
  std::cout << "wrote " << json_path << '\n';

  if (!byte_identical) {
    std::cerr << "t9: daemon output differs from the direct run\n";
    return 1;
  }
  if (r2.hit_ratio <= r1.hit_ratio) {
    std::cerr << "t9: warm round hit ratio " << r2.hit_ratio
              << " not above cold round " << r1.hit_ratio << '\n';
    return 1;
  }
  return 0;
}
