/// F7 — depth-of-focus benefit of scatter bars on an isolated line.
///
/// Sweeps the number of assist bars per side (0, 1, 2) around an isolated
/// 180nm line and reports CD through focus plus the DOF at ±10% CD.
/// Expected shape: each bar pair flattens the CD-through-focus curve; two
/// pairs approach dense-like behaviour; the bars themselves must not
/// print (verified and reported).
#include "exp_common.h"
#include "litho/metrology.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  const std::vector<geom::Polygon> line{
      geom::Polygon{geom::Rect(-90, -2000, 90, 2000)}};
  const geom::Rect window(-1200, -1000, 1200, 1000);
  const litho::Simulator sim(process, window);
  const std::vector<double> defocus{0, 100, 200, 300, 400, 500};

  util::Table table({"defocus_nm", "cd_0bars_nm", "cd_1bar_nm",
                     "cd_2bars_nm"});
  std::vector<std::vector<double>> cds(3);
  std::vector<bool> bars_print(3, false);

  for (int nbars = 0; nbars <= 2; ++nbars) {
    std::vector<geom::Polygon> mask = line;
    if (nbars > 0) {
      opc::SrafSpec sspec;
      sspec.max_bars = nbars;
      const auto bars = opc::insert_srafs(line, sspec).bars;
      mask.insert(mask.end(), bars.begin(), bars.end());
    }
    for (double z : defocus) {
      const litho::Image lat = sim.latent(mask, z);
      cds[static_cast<std::size_t>(nbars)].push_back(litho::printed_cd(
          lat, {0, 0}, {1, 0}, 480.0, sim.threshold()));
      if (z == 0.0 && nbars > 0) {
        // Check the first bar's centerline for printing.
        opc::SrafSpec sspec;
        const double bar_x = 90.0 + static_cast<double>(sspec.bar_distance);
        const double cd_bar = litho::printed_cd(
            lat, {static_cast<geom::Coord>(bar_x), 0}, {1, 0}, 200.0,
            sim.threshold());
        bars_print[static_cast<std::size_t>(nbars)] = !std::isnan(cd_bar);
      }
    }
  }
  for (std::size_t i = 0; i < defocus.size(); ++i) {
    table.add_row(defocus[i], cds[0][i], cds[1][i], cds[2][i]);
  }
  exp::emit("F7", "iso line CD through focus vs assist bars", table);

  util::Table summary({"bars_per_side", "cd_range_over_focus_nm",
                       "bars_print"});
  for (int n = 0; n <= 2; ++n) {
    const auto& v = cds[static_cast<std::size_t>(n)];
    double lo = v[0], hi = v[0];
    for (double c : v) {
      if (!std::isnan(c)) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
    }
    summary.add_row(static_cast<long long>(n), hi - lo,
                    std::string(bars_print[static_cast<std::size_t>(n)]
                                    ? "YES (violation)"
                                    : "no"));
  }
  exp::emit("F7b", "CD stability and SRAF printability", summary);
  return 0;
}
