/// T10 — MRC signoff runtime: scanline engine vs morphology residue.
///
/// The paper predicts post-OPC masks fragment into many small figures;
/// signoff checking must keep up with that data-volume explosion. This
/// experiment times the two checkers in this repo on the same
/// rule-OPC-corrected random blocks: the morphology DRC (full-region
/// opening/closing Booleans per rule, in doubled coordinates) against
/// the scanline MRC engine (one sweep over the canonical slab stack per
/// rule + transpose). Both run the width/space/area deck with identical
/// open-semantics verdicts — the differential test suite asserts the
/// agreement; this binary measures the cost.
///
/// Output: the usual text table, plus BENCH_t10.json (path overridable
/// as argv[1]) with the per-size timings and the speedup for CI
/// trending. Acceptance: scanline >= 3x faster on the largest block.
#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>

#include "drc/drc.h"
#include "exp_common.h"
#include "mrc/mrc.h"
#include "util/strings.h"

namespace {

using namespace opckit;
using Clock = std::chrono::steady_clock;

/// A rule-OPC-corrected random routed block: serifs, hammerheads, and
/// biased edges — the fragmented figure soup signoff actually sees.
geom::Region corrected_block(geom::Coord side, std::uint64_t seed) {
  util::Rng rng(seed);
  layout::Cell cell("t10");
  layout::RandomBlockSpec spec;
  spec.width = side;
  spec.height = side;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  const std::vector<geom::Polygon> drawn(shapes.begin(), shapes.end());
  const auto corrected =
      opc::apply_rule_opc(drawn, opc::default_rule_deck_180());
  return geom::Region::from_polygons(corrected.corrected);
}

double time_ms(const std::function<void()>& fn, int reps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_t10.json";

  const mrc::Deck scan_deck = {
      {mrc::CheckKind::kWidth, "width.60", 60},
      {mrc::CheckKind::kSpace, "space.60", 60},
      {mrc::CheckKind::kArea, "area.6400", 6400},
  };
  const std::vector<drc::Rule> morph_deck = {
      {drc::RuleKind::kMinWidth, "width.60", 60},
      {drc::RuleKind::kMinSpace, "space.60", 60},
      {drc::RuleKind::kMinArea, "area.6400", 6400},
  };

  util::Table table({"side_nm", "rects", "scanline_ms", "morphology_ms",
                     "speedup", "scan_violations", "morph_violations"});
  std::ostringstream json;
  json << "{\"experiment\":\"t10_mrc\",\"sizes\":[";
  double last_speedup = 0.0;
  bool first = true;
  for (const geom::Coord side : {geom::Coord{6000}, geom::Coord{12000},
                                 geom::Coord{24000}}) {
    const geom::Region mask = corrected_block(side, 42);
    const int reps = side <= 6000 ? 5 : (side <= 12000 ? 3 : 1);

    mrc::MrcReport scan;
    const double scan_ms =
        time_ms([&] { scan = mrc::check_mask(mask, scan_deck); }, reps);
    drc::DrcReport morph;
    const double morph_ms =
        time_ms([&] { morph = drc::run_deck(mask, morph_deck); }, reps);
    last_speedup = scan_ms > 0.0 ? morph_ms / scan_ms : 0.0;

    table.add_row(static_cast<long long>(side), mask.rect_count(), scan_ms,
                  morph_ms, last_speedup, scan.violations.size(),
                  morph.violations.size());
    json << (first ? "" : ",") << "{\"side_nm\":" << side
         << ",\"rects\":" << mask.rect_count()
         << ",\"scanline_ms\":" << util::format_double(scan_ms)
         << ",\"morphology_ms\":" << util::format_double(morph_ms)
         << ",\"speedup\":" << util::format_double(last_speedup)
         << ",\"scan_violations\":" << scan.violations.size()
         << ",\"morph_violations\":" << morph.violations.size() << "}";
    first = false;
  }
  json << "],\"speedup_largest\":" << util::format_double(last_speedup)
       << "}\n";

  opckit::exp::emit(
      "T10", "MRC signoff runtime: scanline engine vs morphology residue",
      table);
  std::ofstream(json_path) << json.str();
  std::cout << "wrote " << json_path << '\n';

  // The tentpole's performance claim: the sweep must beat the Booleans
  // clearly on the largest block. A regression here is a build failure
  // for the bench job, not a silent slowdown.
  if (last_speedup < 3.0) {
    std::cerr << "t10: scanline speedup " << last_speedup
              << "x below the 3x acceptance floor\n";
    return 1;
  }
  return 0;
}
