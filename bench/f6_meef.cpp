/// F6 — mask error enhancement factor vs. pitch.
///
/// MEEF = d(wafer CD)/d(mask CD). At large k1 MEEF ~ 1 (mask errors print
/// 1:1); as pitch tightens toward the resolution limit MEEF grows well
/// above 1 — mask CD control becomes the yield limiter, one of the mask-
/// cost arguments of the paper. Measured by biasing all grating lines by
/// +/-2nm per side.
#include "exp_common.h"
#include "litho/metrology.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  util::Table table({"pitch_nm", "k1_of_half_pitch", "meef"});
  for (geom::Coord pitch : {280, 310, 340, 360, 420, 480, 600, 720, 960,
                            1200}) {
    // Keep the duty cycle printable at the tightest pitches: line width is
    // half the pitch (equal lines/spaces), so half-pitch k1 sweeps toward
    // the resolution limit where MEEF blows up.
    const geom::Coord width = pitch / 2;
    const geom::Rect window(-pitch, -1000, pitch, 1000);
    const litho::Simulator sim(process, window);
    auto wafer_cd = [&](geom::Coord bias) {
      const auto mask = exp::grating(width + 2 * bias, pitch);
      const litho::Image lat = sim.latent(mask);
      return litho::printed_cd(lat, {0, 0}, {1, 0},
                               static_cast<double>(pitch), sim.threshold());
    };
    const double m = litho::meef(wafer_cd, 3);
    table.add_row(static_cast<long long>(pitch),
                  process.optics.k1(static_cast<double>(pitch) / 2.0), m);
  }
  exp::emit("F6", "MEEF vs pitch (180nm lines, +/-2nm mask bias per side)",
            table);
  return 0;
}
