/// \file exp_common.h
/// Shared setup for the experiment reproduction binaries.
///
/// Every experiment uses the same calibrated 248 nm / NA 0.68 annular
/// process unless it explicitly sweeps a parameter, so numbers are
/// comparable across tables. All experiment binaries print their table to
/// stdout and exit 0; a nonzero exit means the experiment itself failed.
#pragma once

#include <cstdlib>
#include <iostream>

#include "core/opc.h"
#include "layout/layout.h"
#include "litho/litho.h"
#include "util/strings.h"
#include "util/table.h"

namespace opckit::exp {

/// The process every experiment shares: KrF 248 nm, NA 0.68, annular
/// 0.5/0.8, 25 nm resist diffusion, threshold calibrated so 180 nm lines
/// at 360 nm pitch print on target.
inline litho::SimSpec calibrated_process() {
  litho::SimSpec spec;
  spec.optics.wavelength_nm = 248.0;
  spec.optics.na = 0.68;
  spec.optics.source.shape = litho::SourceShape::kAnnular;
  spec.optics.source.sigma_outer = 0.8;
  spec.optics.source.sigma_inner = 0.5;
  spec.optics.source.grid = 5;
  spec.resist.diffusion_nm = 25.0;
  spec.pixel_nm = 8.0;
  spec.guard_nm = 600;
  litho::calibrate_threshold(spec, 180, 360);
  return spec;
}

/// A 7-line vertical grating of 180nm lines, centered, as polygons.
inline std::vector<geom::Polygon> grating(geom::Coord width,
                                          geom::Coord pitch,
                                          geom::Coord length = 4000,
                                          int lines = 7) {
  std::vector<geom::Polygon> out;
  const int mid = lines / 2;
  for (int i = 0; i < lines; ++i) {
    const geom::Coord cx = static_cast<geom::Coord>(i - mid) * pitch;
    out.emplace_back(geom::Rect(cx - width / 2, -length / 2, cx + width / 2,
                                length / 2));
  }
  return out;
}

/// Print an experiment banner + table and flush. When the environment
/// variable OPCKIT_CSV_DIR names a directory, the table is additionally
/// written there as <experiment_id>.csv for downstream plotting.
inline void emit(const std::string& experiment_id, const std::string& title,
                 const util::Table& table) {
  std::cout << table.to_text(experiment_id + " — " + title) << std::endl;
  if (const char* dir = std::getenv("OPCKIT_CSV_DIR")) {
    table.write_csv(std::string(dir) + "/" +
                    util::to_lower(experiment_id) + ".csv");
  }
}

}  // namespace opckit::exp
