/// A1 — ablation: fragmentation granularity.
///
/// Sweeps the model-OPC fragment length and reports the accuracy/data
/// tradeoff: finer fragments reach lower residual EPE but multiply mask
/// vertices — the knob that sets both OPC quality and mask cost.
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("a1");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  util::Table table({"fragment_nm", "fragments", "final_max_epe_nm",
                     "final_rms_epe_nm", "mask_vertices", "converged"});
  for (geom::Coord frag : {240, 160, 120, 80, 48, 32}) {
    opc::ModelOpcSpec spec;
    spec.max_iterations = 12;
    spec.fragmentation.target_length = frag;
    spec.fragmentation.corner_length = std::min<geom::Coord>(60, frag);
    spec.fragmentation.min_length = std::min<geom::Coord>(24, frag);
    const auto r = opc::run_model_opc(target, process, window, spec);
    const auto stats = opc::measure_mask_data(r.corrected);
    table.add_row(static_cast<long long>(frag), r.fragments.size(),
                  r.final_iteration().max_abs_epe_nm,
                  r.final_iteration().rms_epe_nm, stats.vertices,
                  std::string(r.converged ? "yes" : "no"));
  }
  exp::emit("A1", "fragment length vs residual EPE vs mask data", table);
  return 0;
}
