/// F3 — corner rounding vs. serif size.
///
/// Convex corners print rounded; serifs restore corner area. The metric
/// is the printed-area deficit inside a 240x240 nm box centered on the
/// drawn convex corner of an L target, as the serif size sweeps 0..64 nm.
/// Expected shape: deficit shrinks monotonically with serif size until
/// over-serifing turns the deficit into overshoot.
#include "exp_common.h"

namespace {

using namespace opckit;

/// Printed-area deficit (target - printed, nm^2, positive = rounding loss)
/// in a box around the corner.
double corner_deficit(const litho::Simulator& sim,
                      const std::vector<geom::Polygon>& mask,
                      const geom::Region& target_region,
                      const geom::Rect& corner_box) {
  const litho::Image lat = sim.latent(mask);
  const geom::Region printed = sim.printed(lat);
  const auto target_area =
      static_cast<double>(target_region.intersected(geom::Region(corner_box))
                              .area());
  const auto printed_area = static_cast<double>(
      printed.intersected(geom::Region(corner_box)).area());
  return target_area - printed_area;
}

}  // namespace

int main() {
  const litho::SimSpec process = exp::calibrated_process();

  // L-shaped target with a convex corner at (1200, 400) (arm tips far
  // from the probe box).
  const geom::Polygon l(std::vector<geom::Point>{{0, 0},
                                                 {1200, 0},
                                                 {1200, 400},
                                                 {400, 400},
                                                 {400, 1600},
                                                 {0, 1600}});
  const std::vector<geom::Polygon> target{l.normalized()};
  const geom::Region target_region(l.normalized());
  const geom::Rect corner_box(1200 - 120, 400 - 120, 1200 + 120, 400 + 120);
  const geom::Rect window(-200, -200, 1500, 1800);
  const litho::Simulator sim(process, window);

  util::Table table({"serif_nm", "corner_area_deficit_nm2",
                     "deficit_vs_unserifed_pct"});
  double base = 0.0;
  for (geom::Coord serif : {0, 24, 40, 56, 72, 96, 120}) {
    opc::RuleDeck deck = opc::default_rule_deck_180();
    deck.enable_bias = false;
    deck.enable_line_ends = false;
    deck.serif_size = serif;
    deck.mousebite_size = 0;
    deck.enable_serifs = serif > 0;
    const auto mask = opc::apply_rule_opc(target, deck).corrected;
    const double deficit = corner_deficit(sim, mask, target_region, corner_box);
    if (serif == 0) base = deficit;
    table.add_row(static_cast<long long>(serif), deficit,
                  base != 0.0 ? 100.0 * deficit / base : 0.0);
  }

  exp::emit("F3", "corner rounding area deficit vs serif size", table);
  return 0;
}
