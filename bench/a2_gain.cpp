/// A2 — ablation: feedback gain of the model-OPC loop.
///
/// Sweeps the per-iteration gain. Expected shape: low gain converges
/// slowly but smoothly; gain near 1 is fastest; beyond ~1.2 the loop
/// overshoots and the final error degrades (or oscillates within the
/// move clamp).
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("a2");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  // RMS is the convergence metric: the max|EPE| floor is set by the
  // tip-to-tip pair at minimum spacing (mask-constraint-limited, gain
  // independent) and would mask the gain's effect.
  util::Table table({"gain", "iters_to_rms4", "rms_at_iter2_nm",
                     "final_rms_epe_nm", "final_max_epe_nm"});
  for (double gain : {0.3, 0.5, 0.7, 0.9, 1.1, 1.4}) {
    opc::ModelOpcSpec spec;
    spec.max_iterations = 14;
    spec.gain = gain;
    spec.epe_tolerance_nm = 0.0;  // run all iterations
    const auto r = opc::run_model_opc(target, process, window, spec);
    long long to4 = -1;
    for (const auto& it : r.history) {
      if (it.rms_epe_nm <= 4.0) {
        to4 = it.iteration;
        break;
      }
    }
    table.start_row();
    table.add_cell(gain, 2);
    table.add_cell(to4 >= 0 ? std::to_string(to4) : std::string(">14"));
    table.add_cell(r.history[2].rms_epe_nm);
    table.add_cell(r.final_iteration().rms_epe_nm);
    table.add_cell(r.final_iteration().max_abs_epe_nm);
  }
  exp::emit("A2", "feedback gain sweep (logic cell)", table);
  return 0;
}
