/// T5 — layout pattern catalogs across designs.
///
/// Builds corner-anchored pattern catalogs (radius 400nm) for three
/// designs — a standard-cell-like chip, and two pseudo-random routed
/// blocks with different styles — then reports the top-k coverage curve
/// ("few classes cover most of the design"), the class count needed for
/// 90%/99% coverage, pairwise KL divergence (design-style distance), and
/// pattern-association-tree statistics (context-radius saturation).
#include "exp_common.h"
#include "pattern/pattern.h"

namespace {

using namespace opckit;

std::vector<geom::Polygon> chip_design() {
  layout::Library lib("t5");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  layout::make_chip(lib, "chip", "cell", 4, 4, {3200, 3600});
  return lib.flatten("chip", layout::layers::kPoly);
}

std::vector<geom::Polygon> routed_block(std::uint64_t seed, double fill,
                                        double jog_p) {
  util::Rng rng(seed);
  layout::Cell cell("rb");
  layout::RandomBlockSpec spec;
  spec.width = 14000;
  spec.height = 14000;
  spec.fill = fill;
  spec.jog_probability = jog_p;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  return {shapes.begin(), shapes.end()};
}

}  // namespace

int main() {
  pat::WindowSpec wspec;
  wspec.radius = 400;

  struct Design {
    std::string name;
    std::vector<geom::Polygon> polys;
    pat::PatternCatalog catalog;
  };
  std::vector<Design> designs;
  designs.push_back({"std_cell_chip", chip_design(), {}});
  designs.push_back({"routed_loose", routed_block(7, 0.45, 0.15), {}});
  designs.push_back({"routed_dense", routed_block(8, 0.70, 0.40), {}});
  for (auto& d : designs) d.catalog = pat::build_catalog(d.polys, wspec);

  util::Table cov({"design", "windows", "classes", "top10_cov_pct",
                   "classes_for_90pct", "classes_for_99pct"});
  for (const auto& d : designs) {
    cov.add_row(d.name, d.catalog.total(), d.catalog.classes(),
                100.0 * d.catalog.coverage_top_k(10),
                d.catalog.classes_for_coverage(0.90),
                d.catalog.classes_for_coverage(0.99));
  }
  exp::emit("T5", "pattern catalog coverage (radius 400nm, corner anchors)",
            cov);

  util::Table kl({"D(row||col)", designs[0].name, designs[1].name,
                  designs[2].name});
  for (const auto& a : designs) {
    kl.start_row();
    kl.add_cell(a.name);
    for (const auto& b : designs) {
      kl.add_cell(pat::catalog_kl_divergence(a.catalog, b.catalog));
    }
  }
  exp::emit("T5b", "pairwise KL divergence between pattern spectra", kl);

  util::Table tree({"design", "classes_r200", "classes_r400", "classes_r800",
                    "refine_0to1", "refine_1to2", "saturation_level"});
  for (const auto& d : designs) {
    const pat::PatternTree t(d.polys, {200, 400, 800});
    tree.add_row(d.name, t.classes_at(0), t.classes_at(1), t.classes_at(2),
                 t.refinement_factor(0), t.refinement_factor(1),
                 t.saturation_level());
  }
  exp::emit("T5c", "pattern association tree (context radius analysis)",
            tree);
  return 0;
}
