/// F4 — model-based OPC convergence.
///
/// Max and RMS EPE per iteration on a standard-cell-like block, at the
/// default gain and a higher gain. Expected shape: geometric decay to the
/// tolerance floor in under ~10 iterations; higher gain converges faster
/// but with less margin to oscillation (full sweep in A2).
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("f4");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  util::Table table({"iteration", "max_epe_gain0.6_nm", "rms_epe_gain0.6_nm",
                     "max_epe_gain1.0_nm", "rms_epe_gain1.0_nm"});

  opc::ModelOpcSpec lo;
  lo.max_iterations = 12;
  lo.gain = 0.6;
  lo.epe_tolerance_nm = 0.0;  // run all iterations for the full curve
  opc::ModelOpcSpec hi = lo;
  hi.gain = 1.0;

  const auto r_lo = opc::run_model_opc(target, process, window, lo);
  const auto r_hi = opc::run_model_opc(target, process, window, hi);

  const std::size_t n =
      std::max(r_lo.history.size(), r_hi.history.size());
  for (std::size_t i = 0; i < n; ++i) {
    table.start_row();
    table.add_cell(static_cast<long long>(i));
    if (i < r_lo.history.size()) {
      table.add_cell(r_lo.history[i].max_abs_epe_nm);
      table.add_cell(r_lo.history[i].rms_epe_nm);
    } else {
      table.add_cell(std::string("-"));
      table.add_cell(std::string("-"));
    }
    if (i < r_hi.history.size()) {
      table.add_cell(r_hi.history[i].max_abs_epe_nm);
      table.add_cell(r_hi.history[i].rms_epe_nm);
    } else {
      table.add_cell(std::string("-"));
      table.add_cell(std::string("-"));
    }
  }

  exp::emit("F4", "model-OPC convergence on a logic cell", table);
  return 0;
}
