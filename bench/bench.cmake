# Bench targets live in the top-level CMake scope (pulled in via include())
# so that ${CMAKE_BINARY_DIR}/bench contains only executables: the repro
# driver is `for b in build/bench/*; do $b; done`.

set(OPCKIT_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(opckit_add_experiment name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    opckit_core opckit_pattern opckit_drc opckit_layout opckit_litho
    opckit_geometry opckit_util opckit_warnings)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${OPCKIT_BENCH_DIR})
endfunction()

opckit_add_experiment(f1_cd_through_pitch)
opckit_add_experiment(f2_line_end_pullback)
opckit_add_experiment(f3_corner_serif)
opckit_add_experiment(f4_opc_convergence)
opckit_add_experiment(f5_process_window)
opckit_add_experiment(f6_meef)
opckit_add_experiment(f7_sraf_dof)
opckit_add_experiment(t1_epe_stats)
opckit_add_experiment(t2_data_volume)
opckit_add_experiment(t4_orc)
opckit_add_experiment(t5_pattern_catalog)
opckit_add_experiment(t6_hierarchy)
opckit_add_experiment(a1_fragmentation)
opckit_add_experiment(a2_gain)

opckit_add_experiment(f8_psm)
opckit_add_experiment(t7_drc_plus)
opckit_add_experiment(a3_rule_exploration)
opckit_add_experiment(f9_contacts)
opckit_add_experiment(f10_ddl)
opckit_add_experiment(t8_electrical)
opckit_add_experiment(f11_aberrations)

# T3 uses google-benchmark.
opckit_add_experiment(t3_runtime_scaling)
target_link_libraries(t3_runtime_scaling PRIVATE benchmark::benchmark)

# T10 times the scanline MRC engine against the morphology checker.
opckit_add_experiment(t10_mrc)
target_link_libraries(t10_mrc PRIVATE opckit_mrc)

# T9 boots an in-process opcd daemon and measures throughput, latency
# quantiles, and cross-job cache reuse over a mixed job stream.
opckit_add_experiment(t9_service)
target_link_libraries(t9_service PRIVATE opckit_service opckit_trace)

# T11 drives cold/warm/replay rounds of a seeded repeated-pattern corpus
# through the persistent pattern library and measures the solve rate and
# the warm-start iteration cut.
opckit_add_experiment(t11_library)

# T12 runs pixel ILT and model OPC on the hard-pattern corpus
# (tip-to-tip, contact array, forbidden pitch) with shared metrology and
# compares worst-case EPE and mask data volume; the legalized ILT masks
# are gated through the MRC signoff deck.
opckit_add_experiment(t12_ilt)
target_link_libraries(t12_ilt PRIVATE opckit_ilt opckit_mrc)
