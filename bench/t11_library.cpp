/// T11 — persistent pattern library: cold→warm solve rate and the
/// warm-start iteration cut.
///
/// The adoption-cost story the library attacks: every derivative layout
/// (shrink, ECO, re-spin) re-pays the full model-OPC iteration bill even
/// though most of its patterns are a few nm from patterns some earlier
/// run already solved. This experiment drives three rounds of a seeded
/// repeated-pattern corpus through the flat flow against one on-disk
/// library (`.ocl`):
///
///  1. **cold**  — four feature-distant leaf variants, empty library:
///     every class solves from scratch and is inserted with its seeds.
///  2. **warm**  — the same corpus re-jittered by a few nm: every class
///     misses exact lookup, retrieves its unjittered sibling within the
///     feature budget, and warm-starts model OPC from the solved offsets.
///  3. **replay** — the warm corpus resubmitted unchanged: every tile
///     replays translation-exactly from the accumulated library, zero
///     solves.
///
/// Reported per round: tiles, fresh solves, exact/near hits, imaging
/// iterations, solve rate, and iterations per fresh solve. Output:
/// the usual text table plus BENCH_t11.json (path overridable as
/// argv[1]). Acceptance, enforced as exit status:
///  * every warm-round fresh solve was warm-started (near_hits == solves),
///  * the warm round cuts iterations per fresh solve by >= 40% against
///    the cold round,
///  * the replay round solves nothing and reproduces the warm round's
///    output byte for byte (the exactness claim that makes the savings
///    claim meaningful).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flow.h"
#include "exp_common.h"
#include "layout/generators.h"

namespace {

using namespace opckit;

constexpr int kVariants = 4;

opc::FlowSpec library_flow(const std::string& library_path) {
  opc::FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  spec.library_path = library_path;
  // Tight enough that the structurally-similar corpus variants never
  // cross-match (their pairwise distances sit well above this), wide
  // enough that a few-nm jitter of the same variant always lands inside.
  spec.library_budget = 0.15;
  return spec;
}

/// Corpus chip for variant \p k: a 4x4 isolated repetition of a two-bar
/// leaf whose bar width and gap grow per variant — far enough apart in
/// feature space that variants never near-match each other under the
/// flow's budget. \p jitter moves one edge a few nm: the re-spin corpus,
/// exact-miss but feature-near its own variant.
layout::Library variant_chip(int k, geom::Coord jitter) {
  layout::Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  const geom::Coord w = 180 + 200 * static_cast<geom::Coord>(k);
  const geom::Coord gap = 360 + 160 * static_cast<geom::Coord>(k);
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, w, 1200));
  leaf.add_rect(layout::layers::kPoly,
                geom::Rect(w + gap, 0, 2 * w + gap + jitter, 1200));
  layout::make_chip(lib, "top", "leaf", 4, 4, {4000, 4000});
  return lib;
}

struct RoundStats {
  std::size_t tiles = 0;
  std::size_t solves = 0;
  std::size_t exact_hits = 0;
  std::size_t near_hits = 0;
  std::size_t iterations = 0;       ///< all imaging iterations this round
  std::size_t warm_iterations = 0;  ///< subset spent on warm-started solves
  double solve_rate() const {
    return tiles ? static_cast<double>(solves) / static_cast<double>(tiles)
                 : 0.0;
  }
  double iters_per_solve() const {
    return solves ? static_cast<double>(iterations) /
                        static_cast<double>(solves)
                  : 0.0;
  }
};

std::vector<geom::Polygon> output_polys(const layout::Library& lib,
                                        const opc::FlowSpec& spec) {
  const auto shapes = lib.at("top").shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_t11.json";
  const std::string dir =
      (std::filesystem::temp_directory_path() / "opckit_t11").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const opc::FlowSpec spec = library_flow(dir + "/t11.ocl");

  // jitter per round: 0 = the seed corpus, 4 = the re-spin corpus,
  // then the re-spin corpus again for the exact-replay round.
  const geom::Coord kRoundJitter[3] = {0, 4, 4};
  const char* kRoundLabel[3] = {"cold", "warm", "replay"};
  RoundStats rounds[3];
  std::vector<std::vector<geom::Polygon>> outputs[3];

  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < kVariants; ++k) {
      layout::Library lib = variant_chip(k, kRoundJitter[r]);
      const opc::FlowStats s = opc::run_flat_opc(lib, "top", spec);
      rounds[r].tiles += s.tile_simulations.size();
      rounds[r].solves += s.opc_runs;
      rounds[r].exact_hits += s.library_exact_hits;
      rounds[r].near_hits += s.library_near_hits;
      rounds[r].iterations += s.simulations;
      rounds[r].warm_iterations += s.library_warm_iterations;
      outputs[r].push_back(output_polys(lib, spec));
    }
  }

  const RoundStats& cold = rounds[0];
  const RoundStats& warm = rounds[1];
  const RoundStats& replay = rounds[2];
  const double reduction =
      cold.iters_per_solve() > 0.0
          ? 1.0 - warm.iters_per_solve() / cold.iters_per_solve()
          : 0.0;
  const bool warm_all_seeded =
      warm.near_hits == warm.solves && warm.solves == kVariants;
  const bool replay_exact =
      replay.solves == 0 && replay.exact_hits == replay.tiles &&
      outputs[2] == outputs[1];

  util::Table table({"round", "tiles", "solves", "exact_hits", "near_hits",
                     "iterations", "solve_rate", "iters_per_solve"});
  std::ostringstream json;
  json << "{\"experiment\":\"t11_library\",\"variants\":" << kVariants
       << ",\"budget\":" << util::format_double(spec.library_budget)
       << ",\"rounds\":[";
  for (int r = 0; r < 3; ++r) {
    const RoundStats& rs = rounds[r];
    table.add_row(kRoundLabel[r], static_cast<long long>(rs.tiles),
                  static_cast<long long>(rs.solves),
                  static_cast<long long>(rs.exact_hits),
                  static_cast<long long>(rs.near_hits),
                  static_cast<long long>(rs.iterations), rs.solve_rate(),
                  rs.iters_per_solve());
    json << (r ? "," : "") << "{\"round\":\"" << kRoundLabel[r]
         << "\",\"tiles\":" << rs.tiles << ",\"solves\":" << rs.solves
         << ",\"exact_hits\":" << rs.exact_hits
         << ",\"near_hits\":" << rs.near_hits
         << ",\"iterations\":" << rs.iterations
         << ",\"warm_iterations\":" << rs.warm_iterations
         << ",\"solve_rate\":" << util::format_double(rs.solve_rate())
         << ",\"iters_per_solve\":"
         << util::format_double(rs.iters_per_solve()) << "}";
  }
  json << "],\"iteration_reduction\":" << util::format_double(reduction)
       << ",\"warm_all_seeded\":" << (warm_all_seeded ? "true" : "false")
       << ",\"replay_exact\":" << (replay_exact ? "true" : "false")
       << "}\n";

  opckit::exp::emit("T11",
                    "pattern-library warm starts: solve rate and iteration cut",
                    table);
  std::ofstream(json_path) << json.str();
  std::cout << "wrote " << json_path << '\n';

  if (!warm_all_seeded) {
    std::cerr << "t11: warm round solves not all warm-started (near_hits="
              << warm.near_hits << ", solves=" << warm.solves << ")\n";
    return 1;
  }
  if (reduction < 0.40) {
    std::cerr << "t11: warm-start iteration reduction " << reduction
              << " below the 40% acceptance floor\n";
    return 1;
  }
  if (!replay_exact) {
    std::cerr << "t11: replay round was not an exact, solve-free replay\n";
    return 1;
  }
  return 0;
}
