/// F2 — line-end pullback vs. line width.
///
/// The printed tip of a line retreats from the drawn tip (pullback), the
/// second canonical proximity effect. Measured as the EPE at the tip
/// center (negative = pullback) for uncorrected, rule-OPC (extension +
/// hammer serifs), and model-OPC masks.
#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

double tip_epe(const litho::Simulator& sim,
               const std::vector<geom::Polygon>& mask, geom::Coord tip_y) {
  const litho::Image lat = sim.latent(mask);
  return litho::edge_placement_error(lat, {0, tip_y}, {0, 1}, 250.0,
                                     sim.threshold());
}

}  // namespace

int main() {
  const litho::SimSpec process = exp::calibrated_process();
  const opc::RuleDeck deck = opc::default_rule_deck_180();
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 12;

  util::Table table({"line_width_nm", "pullback_none_nm", "pullback_rule_nm",
                     "pullback_model_nm"});

  for (geom::Coord w : {150, 180, 220, 260, 320}) {
    // Vertical line whose tip ends at y = 0.
    const std::vector<geom::Polygon> target{
        geom::Polygon{geom::Rect(-w / 2, -3000, w / 2, 0)}};
    const geom::Rect window(-600, -1600, 600, 400);
    const litho::Simulator sim(process, window);

    const double none = tip_epe(sim, target, 0);
    const double rule =
        tip_epe(sim, opc::apply_rule_opc(target, deck).corrected, 0);
    const double model = tip_epe(
        sim, opc::run_model_opc(target, process, window, mspec).corrected,
        0);
    table.add_row(static_cast<long long>(w), none, rule, model);
  }

  exp::emit("F2",
            "line-end pullback (EPE at tip; negative = printed short)",
            table);
  return 0;
}
