/// A3 — design-rule exploration: picking the tip-to-tip rule.
///
/// The "impact on design" half of the paper's title: once OPC is in the
/// flow, design rules are chosen by what OPC can make printable, not by
/// what draws legally. This experiment sweeps the drawn tip-to-tip gap of
/// facing line ends, runs model OPC at each value, and verifies across
/// process corners — the residual tip EPE and bridge count versus gap IS
/// the design-rule table: the smallest gap with acceptable residual and
/// zero bridging becomes the rule.
#include <cmath>

#include "exp_common.h"
#include "litho/metrology.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  util::Table table({"drawn_gap_nm", "tip_epe_nominal_nm",
                     "tip_epe_defocus200_nm", "bridges_any_cond",
                     "verdict"});

  for (geom::Coord gap : {240, 280, 320, 360, 420, 500}) {
    const std::vector<geom::Polygon> targets{
        geom::Polygon{geom::Rect(-90, -2600, 90, -gap / 2)},
        geom::Polygon{geom::Rect(-90, gap / 2, 90, 2600)}};
    const geom::Rect window(-400, -1000, 400, 1000);

    opc::ModelOpcSpec mspec;
    mspec.max_iterations = 10;
    const auto r = opc::run_model_opc(targets, process, window, mspec);

    const litho::Simulator sim(process, window);
    auto tip_epe = [&](double defocus) {
      const litho::Image lat = sim.latent(r.corrected, defocus);
      return litho::edge_placement_error(lat, {0, -gap / 2}, {0, 1}, 200.0,
                                         sim.threshold());
    };
    const double epe0 = tip_epe(0.0);
    const double epe200 = tip_epe(200.0);

    opc::OrcSpec orc;
    orc.epe_spec_nm = 1e9;  // count catastrophic failures only
    const auto rep = opc::run_orc(targets, r.corrected, {}, process, window,
                                  orc);
    const std::size_t bridges = rep.count(opc::OrcViolationKind::kBridge) +
                                rep.count(opc::OrcViolationKind::kLostEdge);

    const bool ok = bridges == 0 && !std::isnan(epe0) &&
                    std::abs(epe0) <= 12.0 && !std::isnan(epe200) &&
                    std::abs(epe200) <= 20.0;
    table.start_row();
    table.add_cell(static_cast<long long>(gap));
    table.add_cell(epe0);
    table.add_cell(epe200);
    table.add_cell(bridges);
    table.add_cell(std::string(ok ? "LEGAL" : "forbidden"));
  }

  exp::emit("A3",
            "tip-to-tip design-rule exploration (post-OPC residuals)",
            table);
  return 0;
}
