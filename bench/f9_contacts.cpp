/// F9 — contact-layer printing and correction.
///
/// Contacts are the hardest layer of this era: small 2D squares image as
/// round blobs well below drawn size, with strong pitch dependence.
/// Reported: printed contact CD (x-cut) through pitch, uncorrected vs
/// model OPC, plus area fidelity. Expected shape: uncorrected contacts
/// print ~20-40% small (worse isolated); OPC recovers CD to within a few
/// nm by oversizing the mask.
#include "exp_common.h"
#include "litho/metrology.h"

int main() {
  using namespace opckit;
  // Contacts need their own anchor: calibrate on a dense 260nm contact
  // row is unusual — keep the line anchor (shared process) and accept
  // the layer-to-layer bias, as early-2000s single-threshold flows did.
  const litho::SimSpec process = exp::calibrated_process();
  const geom::Coord size = 260;

  util::Table table({"pitch_nm", "cd_none_nm", "area_none_pct",
                     "cd_model_nm", "area_model_pct"});

  for (geom::Coord pitch : {520, 650, 780, 1040, 1560}) {
    // 3x3 contact array; measure the center contact.
    std::vector<geom::Polygon> targets;
    for (int j = -1; j <= 1; ++j) {
      for (int i = -1; i <= 1; ++i) {
        const geom::Coord x = static_cast<geom::Coord>(i) * pitch;
        const geom::Coord y = static_cast<geom::Coord>(j) * pitch;
        targets.emplace_back(geom::Rect(x - size / 2, y - size / 2,
                                        x + size / 2, y + size / 2));
      }
    }
    const geom::Rect window(-pitch - size, -pitch - size, pitch + size,
                            pitch + size);
    const litho::Simulator sim(process, window);

    auto measure = [&](const std::vector<geom::Polygon>& mask, double& cd,
                       double& area_pct) {
      const litho::Image lat = sim.latent(mask);
      cd = litho::printed_cd(lat, {0, 0}, {1, 0},
                             static_cast<double>(pitch), sim.threshold());
      const geom::Region printed = sim.printed(lat);
      const geom::Region center_box{geom::Rect(
          -pitch / 2, -pitch / 2, pitch / 2, pitch / 2)};
      area_pct = 100.0 *
                 static_cast<double>(
                     printed.intersected(center_box).area()) /
                 static_cast<double>(size * size);
    };

    double cd_none, area_none;
    measure(targets, cd_none, area_none);

    opc::ModelOpcSpec mspec;
    mspec.max_iterations = 10;
    // Contacts are all "line ends" by classification; let them grow.
    mspec.fragmentation.line_end_max = size + 1;
    const auto r = opc::run_model_opc(targets, process, window, mspec);
    double cd_model, area_model;
    measure(r.corrected, cd_model, area_model);

    table.add_row(static_cast<long long>(pitch), cd_none, area_none,
                  cd_model, area_model);
  }

  exp::emit("F9", "contact printing (260nm contacts, x-cut CD and area)",
            table);
  return 0;
}
