/// F5 — exposure-defocus process window.
///
/// Exposure latitude (dose range keeping CD within ±10%) versus defocus
/// for: dense 180nm lines, an isolated 180nm line, and the same isolated
/// line after model OPC + scatter bars. Expected shape: dense has the
/// widest window; the bare iso line's window collapses quickly with
/// defocus; OPC+SRAF recovers a large fraction of the dense DOF — the
/// classic argument for assist features.
#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

/// CD-vs-(defocus, dose) oracle that caches one latent image per defocus
/// (dose only scales the threshold — no re-imaging needed).
class CdOracle {
 public:
  CdOracle(const litho::SimSpec& process, std::vector<geom::Polygon> mask,
           const geom::Rect& window, double span)
      : sim_(process, window), mask_(std::move(mask)), span_(span) {}

  double operator()(double defocus, double dose) {
    auto it = cache_.find(defocus);
    if (it == cache_.end()) {
      it = cache_.emplace(defocus, sim_.latent(mask_, defocus)).first;
    }
    return litho::printed_cd(it->second, {0, 0}, {1, 0}, span_,
                             sim_.threshold(dose));
  }

 private:
  litho::Simulator sim_;
  std::vector<geom::Polygon> mask_;
  double span_;
  std::map<double, litho::Image> cache_;
};

}  // namespace

int main() {
  const litho::SimSpec process = exp::calibrated_process();
  const std::vector<double> defocus{0, 100, 200, 300, 400, 500};

  // Dense grating.
  const auto dense = exp::grating(180, 360);
  CdOracle dense_cd(process, dense, geom::Rect(-720, -1000, 720, 1000), 360);

  // Bare isolated line.
  const std::vector<geom::Polygon> iso{
      geom::Polygon{geom::Rect(-90, -2000, 90, 2000)}};
  const geom::Rect iso_window(-1100, -1000, 1100, 1000);
  CdOracle iso_cd(process, iso, iso_window, 500);

  // Iso line with model OPC and scatter bars.
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 10;
  const auto corrected =
      opc::run_model_opc(iso, process, iso_window, mspec).corrected;
  opc::SrafSpec sspec;
  const auto bars = opc::insert_srafs(corrected, sspec).bars;
  std::vector<geom::Polygon> assisted = corrected;
  assisted.insert(assisted.end(), bars.begin(), bars.end());
  CdOracle sraf_cd(process, assisted, iso_window, 500);

  auto window_of = [&](CdOracle& oracle) {
    return litho::exposure_defocus_window(
        [&](double z, double dose) { return oracle(z, dose); }, defocus,
        180.0, 0.10);
  };
  const auto w_dense = window_of(dense_cd);
  const auto w_iso = window_of(iso_cd);
  const auto w_sraf = window_of(sraf_cd);

  util::Table table({"defocus_nm", "EL_dense_pct", "EL_iso_pct",
                     "EL_iso_opc_sraf_pct"});
  for (std::size_t i = 0; i < defocus.size(); ++i) {
    table.add_row(defocus[i], w_dense[i].latitude_pct, w_iso[i].latitude_pct,
                  w_sraf[i].latitude_pct);
  }
  exp::emit("F5", "exposure latitude vs defocus (CD 180nm +/-10%)", table);

  util::Table dof({"mask", "DOF_at_EL8pct_nm"});
  dof.add_row(std::string("dense"), litho::depth_of_focus(w_dense, 8.0));
  dof.add_row(std::string("iso"), litho::depth_of_focus(w_iso, 8.0));
  dof.add_row(std::string("iso_opc_sraf"), litho::depth_of_focus(w_sraf, 8.0));
  exp::emit("F5b", "depth of focus at 8% exposure latitude", dof);
  return 0;
}
