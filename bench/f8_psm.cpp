/// F8 — attenuated PSM vs binary mask (extension experiment).
///
/// The paper's era paired OPC with phase-shifting masks; a 6% attenuated
/// PSM replaces chrome with a weakly transmitting 180°-phase film, which
/// steepens the image edge. Reported: normalized image log slope (NILS)
/// through pitch, MEEF at the tightest pitch, and dense-grating DOF.
/// Expected shape: att-PSM wins NILS everywhere (strongest semi-dense),
/// lowers MEEF, and buys measurable DOF.
#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

litho::SimSpec psm_process() {
  litho::SimSpec spec = exp::calibrated_process();
  spec.mask.type = litho::MaskType::kAttenuatedPsm;
  spec.mask.background_transmission = 0.06;
  // Re-anchor the resist threshold for the new mask stack.
  litho::calibrate_threshold(spec, 180, 360);
  return spec;
}

}  // namespace

int main() {
  const litho::SimSpec binary = exp::calibrated_process();
  const litho::SimSpec psm = psm_process();

  // Att-PSM works best with low partial coherence; include a
  // sigma-0.4 circular variant of both stacks (the illumination fabs
  // actually paired with att-PSM) alongside the production annular one.
  auto low_sigma = [](litho::SimSpec spec) {
    spec.optics.source.shape = litho::SourceShape::kCircular;
    spec.optics.source.sigma_outer = 0.4;
    litho::calibrate_threshold(spec, 180, 360);
    return spec;
  };
  const litho::SimSpec binary_lo = low_sigma(binary);
  const litho::SimSpec psm_lo = low_sigma(psm);

  util::Table nils({"pitch_nm", "nils_binary", "nils_attpsm",
                    "nils_binary_sig0.4", "nils_attpsm_sig0.4"});
  for (geom::Coord pitch : {360, 480, 600, 840, 1200}) {
    const auto mask = exp::grating(180, pitch);
    const geom::Rect window(-pitch, -1000, pitch, 1000);
    auto nils_of = [&](const litho::SimSpec& process) {
      const litho::Simulator sim(process, window);
      const litho::Image lat = sim.latent(mask);
      const double ils = litho::image_log_slope(lat, {90, 0}, {1, 0}, 80.0,
                                                sim.threshold());
      return ils * 180.0;  // NILS = ILS x nominal CD
    };
    nils.add_row(static_cast<long long>(pitch), nils_of(binary),
                 nils_of(psm), nils_of(binary_lo), nils_of(psm_lo));
  }
  exp::emit("F8", "NILS through pitch: binary vs 6% attenuated PSM", nils);

  // MEEF at the tightest pitches.
  util::Table meef_t({"pitch_nm", "meef_binary", "meef_attpsm"});
  for (geom::Coord pitch : {280, 340, 420}) {
    const geom::Coord width = pitch / 2;
    const geom::Rect window(-pitch, -1000, pitch, 1000);
    auto meef_of = [&](const litho::SimSpec& process) {
      const litho::Simulator sim(process, window);
      auto wafer_cd = [&](geom::Coord bias) {
        const auto mask = exp::grating(width + 2 * bias, pitch);
        const litho::Image lat = sim.latent(mask);
        return litho::printed_cd(lat, {0, 0}, {1, 0},
                                 static_cast<double>(pitch),
                                 sim.threshold());
      };
      return litho::meef(wafer_cd, 3);
    };
    meef_t.add_row(static_cast<long long>(pitch), meef_of(binary),
                   meef_of(psm));
  }
  exp::emit("F8b", "MEEF: binary vs attenuated PSM", meef_t);

  // Dense DOF comparison.
  util::Table dof({"mask_type", "DOF_at_EL8pct_nm"});
  const auto dense = exp::grating(180, 360);
  const geom::Rect window(-720, -1000, 720, 1000);
  const std::vector<double> defocus{0, 100, 200, 300, 400, 500, 600};
  for (const auto& [name, process] :
       std::vector<std::pair<std::string, const litho::SimSpec*>>{
           {"binary", &binary}, {"attpsm_6pct", &psm}}) {
    const litho::Simulator sim(*process, window);
    std::map<double, litho::Image> cache;
    const auto win = litho::exposure_defocus_window(
        [&](double z, double dose) {
          auto it = cache.find(z);
          if (it == cache.end()) {
            it = cache.emplace(z, sim.latent(dense, z)).first;
          }
          return litho::printed_cd(it->second, {0, 0}, {1, 0}, 360.0,
                                   sim.threshold(dose));
        },
        defocus, 180.0, 0.10);
    dof.add_row(name, litho::depth_of_focus(win, 8.0));
  }
  exp::emit("F8c", "dense-grating DOF: binary vs attenuated PSM", dof);
  return 0;
}
