/// F1 — CD through pitch (the proximity curve).
///
/// Sweeps the pitch of a 180 nm line grating from dense to isolated and
/// measures the printed CD of the center line with no correction, with
/// rule-based OPC, and with model-based OPC. The uncorrected curve is the
/// paper's motivating figure (iso/dense bias of several nm to tens of nm);
/// rule OPC flattens the coarse structure; model OPC flattens it to the
/// EPE tolerance. A circular-source variant of the uncorrected curve shows
/// the source-shape dependence (design-choice ablation noted in
/// DESIGN.md).
#include <cmath>

#include "exp_common.h"
#include "litho/metrology.h"

namespace {

using namespace opckit;

double center_cd(const litho::Simulator& sim,
                 const std::vector<geom::Polygon>& mask, double span) {
  const litho::Image lat = sim.latent(mask);
  return litho::printed_cd(lat, {0, 0}, {1, 0}, span, sim.threshold());
}

}  // namespace

int main() {
  const litho::SimSpec process = exp::calibrated_process();

  // Circular-source variant for the ablation column.
  litho::SimSpec circular = process;
  circular.optics.source.shape = litho::SourceShape::kCircular;
  circular.optics.source.sigma_outer = 0.6;
  litho::calibrate_threshold(circular, 180, 360);

  const opc::RuleDeck deck = opc::default_rule_deck_180();
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 12;

  util::Table table({"pitch_nm", "cd_none_nm", "cd_rule_nm", "cd_model_nm",
                     "cd_none_circ_nm", "bias_vs_target_nm"});

  std::vector<geom::Coord> pitches{360, 480,  600,  720, 840,
                                   960, 1080, 1200, 1440};
  for (geom::Coord pitch : pitches) {
    const auto target = exp::grating(180, pitch);
    const geom::Rect window(-pitch, -1000, pitch, 1000);
    const litho::Simulator sim(process, window);
    const litho::Simulator sim_c(circular, window);
    const double span = static_cast<double>(pitch);

    const double cd_none = center_cd(sim, target, span);
    const double cd_circ = center_cd(sim_c, target, span);
    const double cd_rule =
        center_cd(sim, opc::apply_rule_opc(target, deck).corrected, span);
    const double cd_model = center_cd(
        sim, opc::run_model_opc(target, process, window, mspec).corrected,
        span);

    table.add_row(static_cast<long long>(pitch), cd_none, cd_rule, cd_model,
                  cd_circ, cd_none - 180.0);
  }

  // True isolated line as the end of the curve.
  {
    const std::vector<geom::Polygon> iso{
        geom::Polygon{geom::Rect(-90, -2000, 90, 2000)}};
    const geom::Rect window(-900, -1000, 900, 1000);
    const litho::Simulator sim(process, window);
    const litho::Simulator sim_c(circular, window);
    const double cd_none = center_cd(sim, iso, 900);
    table.add_row(std::string("iso"), cd_none,
                  center_cd(sim, opc::apply_rule_opc(iso, deck).corrected,
                            900),
                  center_cd(sim,
                            opc::run_model_opc(iso, process, window, mspec)
                                .corrected,
                            900),
                  center_cd(sim_c, iso, 900), cd_none - 180.0);
  }

  exp::emit("F1", "CD through pitch, 180nm lines (target 180nm)", table);
  return 0;
}
