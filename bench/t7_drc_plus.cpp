/// T7 — DRC-Plus screening: from hotspots to a pattern deck to signoff.
///
/// The pattern-catalog application the later Capodieci-line papers
/// describe: (1) ORC finds where the uncorrected design fails; (2) the 2D
/// neighborhoods of those failures are canonicalized into a hotspot match
/// deck; (3) a full chip built from the same cell library is screened by
/// pure pattern matching — no simulation at signoff — and every placement
/// of each hotspot is flagged. Reported: deck size, scan hits, and the
/// consistency between simulated violations and matched patterns.
#include <set>

#include "exp_common.h"
#include "pattern/pattern.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  // (1) Find hotspots on the library cell by simulation (expensive, done
  // once per cell, as in yield learning).
  layout::Library lib("t7");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> cell_polys(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  opc::OrcSpec orc_spec;
  orc_spec.epe_spec_nm = 12.0;
  orc_spec.corners.clear();  // nominal condition
  const opc::OrcReport orc = opc::run_orc(cell_polys, cell_polys, {},
                                          process, window, orc_spec);

  // (2) Canonicalize the neighborhoods of the violations into a deck.
  // Pattern windows are anchored at geometric events (polygon corners),
  // so each violation snaps to its nearest vertex — the corner whose
  // neighborhood caused it.
  const geom::Coord radius = 300;
  const auto merged = opc::merge_targets(cell_polys);
  std::vector<geom::Point> vertices;
  for (const auto& p : merged) {
    for (std::size_t i = 0; i < p.size(); ++i) vertices.push_back(p[i]);
  }
  std::set<geom::Point> seeds;
  for (const auto& v : orc.violations) {
    const geom::Point* best = nullptr;
    for (const auto& vert : vertices) {
      if (!best || manhattan_length(vert - v.location) <
                       manhattan_length(*best - v.location)) {
        best = &vert;
      }
    }
    if (best && manhattan_length(*best - v.location) <= radius) {
      seeds.insert(*best);
    }
  }
  pat::PatternMatcher deck(radius);
  std::size_t seeded = 0;
  const geom::Region cell_region = geom::Region::from_polygons(merged);
  for (const geom::Point& anchor : seeds) {
    const geom::Rect win(anchor.x - radius, anchor.y - radius,
                         anchor.x + radius, anchor.y + radius);
    const geom::Region local = cell_region.clipped(win).translated(-anchor);
    if (local.empty()) continue;
    deck.add_rule("hotspot." + std::to_string(seeded), local);
    ++seeded;
  }

  // (3) Screen a 4x4 chip of the same cell with pure pattern matching.
  layout::make_chip(lib, "chip", "cell", 4, 4, {3200, 3600});
  const auto chip = lib.flatten("chip", layout::layers::kPoly);
  const auto hits = deck.scan(chip);

  util::Table table({"stage", "count"});
  table.add_row(std::string("orc_violations_on_cell"),
                orc.violations.size());
  table.add_row(std::string("hotspot_patterns_seeded"), seeded);
  table.add_row(std::string("deck_classes_after_dedup"), deck.size());
  table.add_row(std::string("chip_placements"), std::size_t{16});
  table.add_row(std::string("scan_hits_on_chip"), hits.size());
  exp::emit("T7", "DRC-Plus: hotspot deck extraction and full-chip scan",
            table);

  // Consistency: each deck class must be found at least once per
  // placement that replicates its source geometry; hotspot windows sit at
  // ORC marker locations (pinch/bridge markers may not coincide with a
  // polygon corner anchor, so scan() anchoring can differ — report the
  // per-rule hit distribution instead of asserting equality).
  std::map<std::string, std::size_t> per_rule;
  for (const auto& h : hits) ++per_rule[h.rule];
  util::Table dist({"metric", "value"});
  std::size_t min_hits = hits.empty() ? 0 : SIZE_MAX, max_hits = 0;
  for (const auto& [rule, n] : per_rule) {
    min_hits = std::min(min_hits, n);
    max_hits = std::max(max_hits, n);
  }
  dist.add_row(std::string("distinct_rules_hit"), per_rule.size());
  dist.add_row(std::string("min_hits_per_rule"), min_hits);
  dist.add_row(std::string("max_hits_per_rule"), max_hits);
  exp::emit("T7b", "hit distribution across the deck", dist);
  return 0;
}
