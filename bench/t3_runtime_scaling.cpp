/// T3 — OPC runtime scaling (google-benchmark).
///
/// The operational cost the paper warned design teams about: rule OPC is
/// geometry-bound and scales near-linearly with shape count; model OPC
/// pays an imaging simulation per iteration and is orders of magnitude
/// slower per area. Benchmarked on pseudo-random routed blocks of growing
/// area, plus pattern-catalog extraction as the analysis-side workload.
#include <benchmark/benchmark.h>

#include "core/opc.h"
#include "layout/layout.h"
#include "litho/litho.h"
#include "pattern/pattern.h"

namespace {

using namespace opckit;

std::vector<geom::Polygon> random_block(geom::Coord side,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  layout::Cell cell("rb");
  layout::RandomBlockSpec spec;
  spec.width = side;
  spec.height = side;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  return {shapes.begin(), shapes.end()};
}

const litho::SimSpec& process() {
  static const litho::SimSpec spec = [] {
    litho::SimSpec s;
    s.optics.source.grid = 5;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return spec;
}

void BM_RuleOpc(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  const opc::RuleDeck deck = opc::default_rule_deck_180();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opc::apply_rule_opc(target, deck));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_RuleOpc)->Arg(6000)->Arg(12000)->Arg(24000)->Arg(48000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_ModelOpc(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 4;  // fixed iteration count isolates scaling
  mspec.epe_tolerance_nm = 0.0;
  const geom::Rect window(0, 0, side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opc::run_model_opc(target, process(), window, mspec));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_ModelOpc)->Arg(2400)->Arg(3600)->Arg(4800)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->Complexity(benchmark::oN);

void BM_LithoSimulation(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  const litho::Simulator sim(process(), geom::Rect(0, 0, side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.latent(target));
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_LithoSimulation)->Arg(2400)->Arg(4800)->Arg(9600)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNLogN);

void BM_PatternCatalog(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  pat::WindowSpec spec;
  spec.radius = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pat::build_catalog(target, spec));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_PatternCatalog)->Arg(6000)->Arg(12000)->Arg(24000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_GdsiiRoundTrip(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  util::Rng rng(42);
  layout::Library lib("bench");
  layout::Cell& cell = lib.cell("rb");
  layout::RandomBlockSpec spec;
  spec.width = side;
  spec.height = side;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::gdsii_byte_size(lib));
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_GdsiiRoundTrip)->Arg(12000)->Arg(24000)->Arg(48000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
