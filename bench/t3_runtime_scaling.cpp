/// T3 — OPC runtime scaling (google-benchmark).
///
/// The operational cost the paper warned design teams about: rule OPC is
/// geometry-bound and scales near-linearly with shape count; model OPC
/// pays an imaging simulation per iteration and is orders of magnitude
/// slower per area. Benchmarked on pseudo-random routed blocks of growing
/// area, plus pattern-catalog extraction as the analysis-side workload.
///
/// The flat-flow sweeps probe the two production levers on top of the
/// per-window cost: thread count (BM_FlatFlowJobs, x-axis = FlowSpec::jobs,
/// wall-clock via UseRealTime; speedup = t(1)/t(N), expect >= 2.5x at 4
/// jobs on >= 4 hardware threads) and pattern reuse (BM_FlatFlowCache,
/// x-axis = cache on/off on a chip of repeated placements; the hit_rate
/// counter reports the fraction of windows replayed). BM_FlatFlowImaging
/// probes the third lever, the imaging engine itself: Abbe reference vs
/// SOCS kernel compression on a production-dense source (solve_ms is the
/// number to compare). Output geometry is byte-identical across every
/// point of the jobs/cache sweeps — that is the flow driver's determinism
/// guarantee, asserted by tests/core_flow_parallel_test.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/opc.h"
#include "layout/layout.h"
#include "litho/litho.h"
#include "pattern/pattern.h"

namespace {

using namespace opckit;

std::vector<geom::Polygon> random_block(geom::Coord side,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  layout::Cell cell("rb");
  layout::RandomBlockSpec spec;
  spec.width = side;
  spec.height = side;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  return {shapes.begin(), shapes.end()};
}

const litho::SimSpec& process() {
  static const litho::SimSpec spec = [] {
    litho::SimSpec s;
    s.optics.source.grid = 5;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return spec;
}

void BM_RuleOpc(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  const opc::RuleDeck deck = opc::default_rule_deck_180();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opc::apply_rule_opc(target, deck));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_RuleOpc)->Arg(6000)->Arg(12000)->Arg(24000)->Arg(48000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_ModelOpc(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 4;  // fixed iteration count isolates scaling
  mspec.epe_tolerance_nm = 0.0;
  const geom::Rect window(0, 0, side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opc::run_model_opc(target, process(), window, mspec));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_ModelOpc)->Arg(2400)->Arg(3600)->Arg(4800)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->Complexity(benchmark::oN);

void BM_LithoSimulation(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  const litho::Simulator sim(process(), geom::Rect(0, 0, side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.latent(target));
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_LithoSimulation)->Arg(2400)->Arg(4800)->Arg(9600)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNLogN);

void BM_PatternCatalog(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  const auto target = random_block(side, 42);
  pat::WindowSpec spec;
  spec.radius = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pat::build_catalog(target, spec));
  }
  state.counters["polygons"] = static_cast<double>(target.size());
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_PatternCatalog)->Arg(6000)->Arg(12000)->Arg(24000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_GdsiiRoundTrip(benchmark::State& state) {
  const auto side = static_cast<geom::Coord>(state.range(0));
  util::Rng rng(42);
  layout::Library lib("bench");
  layout::Cell& cell = lib.cell("rb");
  layout::RandomBlockSpec spec;
  spec.width = side;
  spec.height = side;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::gdsii_byte_size(lib));
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_GdsiiRoundTrip)->Arg(12000)->Arg(24000)->Arg(48000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

/// A chip of repeated two-bar leaf placements for the flow sweeps.
layout::Library flow_chip(int cols, int rows, geom::Point pitch) {
  layout::Library lib("bench");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, pitch);
  return lib;
}

opc::FlowSpec flow_spec() {
  opc::FlowSpec spec;
  spec.sim = process();
  spec.opc.max_iterations = 4;  // fixed iteration count isolates scaling
  spec.opc.epe_tolerance_nm = 0.0;
  // Zero tolerance is deliberately out-of-band (MOD007), so skip the
  // pre-flight gate the production flow would run.
  spec.preflight = false;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Thread sweep: same chip, jobs = 1/2/4/8, cache off so every placement
/// pays its full simulation cost. Pitch below the halo couples neighbours,
/// the realistic (and cache-hostile) regime.
void BM_FlatFlowJobs(benchmark::State& state) {
  layout::Library lib = flow_chip(4, 4, {1400, 1800});
  opc::FlowSpec spec = flow_spec();
  spec.jobs = static_cast<int>(state.range(0));
  spec.cache = false;
  std::size_t opc_runs = 0;
  opc::FlowStats stats;
  for (auto _ : state) {
    stats = opc::run_flat_opc(lib, "top", spec);
    opc_runs = stats.opc_runs;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["jobs"] = static_cast<double>(spec.jobs);
  state.counters["opc_runs"] = static_cast<double>(opc_runs);
  // Per-phase wall-time breakdown from the flow's embedded metrics
  // snapshot (last iteration): shows WHERE the thread sweep buys time —
  // gather/solve parallelize, resolve/merge stay serial (Amdahl floor).
  const auto& gauges = stats.metrics.gauges;
  state.counters["gather_ms"] =
      gauges.at(trace::metric::kFlowPhaseGatherMs);
  state.counters["resolve_ms"] =
      gauges.at(trace::metric::kFlowPhaseResolveMs);
  state.counters["solve_ms"] = gauges.at(trace::metric::kFlowPhaseSolveMs);
  state.counters["merge_ms"] = gauges.at(trace::metric::kFlowPhaseMergeMs);
}
BENCHMARK(BM_FlatFlowJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

/// Cache sweep: placements isolated (pitch > halo) so every window is a
/// translated copy — the repeated-pattern regime AdaOPC exploits. Arg 0 =
/// cache off (seed behavior), Arg 1 = cache on (one solve, rest replay).
void BM_FlatFlowCache(benchmark::State& state) {
  layout::Library lib = flow_chip(4, 4, {4000, 4000});
  opc::FlowSpec spec = flow_spec();
  spec.jobs = 1;
  spec.cache = state.range(0) != 0;
  opc::FlowStats stats;
  for (auto _ : state) {
    stats = opc::run_flat_opc(lib, "top", spec);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["opc_runs"] = static_cast<double>(stats.opc_runs);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  const double total = static_cast<double>(stats.tile_simulations.size());
  state.counters["hit_rate"] =
      total == 0.0 ? 0.0 : static_cast<double>(stats.cache_hits) / total;
}
BENCHMARK(BM_FlatFlowCache)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

/// A production-dense illumination (grid 21, ~212 source points) —
/// the regime where SOCS pays: the kept-kernel count saturates toward
/// the continuous-TCC spectrum (~48 at ε = 1e-3) while the Abbe cost
/// keeps growing with the point count. Each spec calibrates under its
/// own engine, as the production flow would.
const litho::SimSpec& dense_process(bool socs) {
  static const litho::SimSpec abbe = [] {
    litho::SimSpec s;
    s.optics.source.grid = 21;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  static const litho::SimSpec kernelized = [] {
    litho::SimSpec s = abbe;
    s.imaging = litho::ImagingMode::kSocs;
    s.socs_epsilon = 1e-3;  // the production speed setting
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return socs ? kernelized : abbe;
}

/// Imaging sweep: the same jobs=1 flat flow driven by the Abbe
/// reference (Arg 0) versus SOCS kernel imaging (Arg 1) on the dense
/// source. The solve phase pays one IFFT per source point under Abbe
/// and one per kept kernel under SOCS; kernel eigensolves are one-time
/// costs shared through the process-wide KernelCache and are included
/// in the measured run (cache cleared up front; the kernel_* counters
/// report sets built, kernels kept, and cache hits).
void BM_FlatFlowImaging(benchmark::State& state) {
  const bool socs = state.range(0) != 0;
  layout::Library lib = flow_chip(2, 2, {1400, 1800});
  opc::FlowSpec spec = flow_spec();
  spec.sim = dense_process(socs);
  spec.jobs = 1;
  spec.cache = false;
  litho::KernelCache::instance().clear();
  opc::FlowStats stats;
  for (auto _ : state) {
    stats = opc::run_flat_opc(lib, "top", spec);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["solve_ms"] =
      stats.metrics.gauges.at(trace::metric::kFlowPhaseSolveMs);
  const auto counter = [&](const char* name) {
    const auto it = stats.metrics.counters.find(name);
    return it == stats.metrics.counters.end()
               ? 0.0
               : static_cast<double>(it->second);
  };
  state.counters["kernel_sets"] =
      counter(trace::metric::kLithoSocsKernelSetsBuilt);
  state.counters["kernels"] = counter(trace::metric::kLithoSocsKernelsBuilt);
  state.counters["kernel_hits"] =
      counter(trace::metric::kLithoSocsCacheHits);
  // FFT-engine breakdown: where the solve-phase transforms went.
  // plan_builds counts first-touch table constructions (amortized to
  // ~zero by the PlanCache: the hit counter dwarfs it), fft_batched is
  // the fused sparse inverse+|.|^2 hot path (one per kernel or source
  // point per simulation), fft_r2c the mask-spectrum forwards, and
  // rows_pruned the zero frequency rows the sparse batches skipped.
  state.counters["plan_builds"] = counter(trace::metric::kLithoFftPlanBuilds);
  state.counters["plan_hits"] = counter(trace::metric::kLithoFftPlanHits);
  state.counters["plan_build_ms"] =
      stats.metrics.gauges.count(trace::metric::kLithoFftPlanBuildMs)
          ? stats.metrics.gauges.at(trace::metric::kLithoFftPlanBuildMs)
          : 0.0;
  state.counters["fft_r2c"] = counter(trace::metric::kLithoFftR2cTransforms);
  state.counters["fft_c2r"] = counter(trace::metric::kLithoFftC2rTransforms);
  state.counters["fft_batched"] =
      counter(trace::metric::kLithoFftBatchedTransforms);
  state.counters["fft2d"] = counter(trace::metric::kLithoFft2dTransforms);
  state.counters["rows_pruned"] = counter(trace::metric::kLithoFftRowsPruned);
}
BENCHMARK(BM_FlatFlowImaging)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

/// The repeated-placement chip of the cache sweep, rebuilt from 16
/// individual SREFs so a single placement can be retargeted for the ECO
/// point (an AREF cannot be partially edited). Placement \p eco, if
/// non-negative, references a leaf whose second bar is 40nm wider. Pitch
/// 4000 keeps every placement outside its neighbours' halo, so unedited
/// placements keep their stored optical neighborhood.
layout::Library sref_chip(int eco = -1) {
  layout::Library lib("bench");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  if (eco >= 0) {
    layout::Cell& edited = lib.cell("leaf_eco");
    edited.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
    edited.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 760, 1200));
  }
  layout::Cell& top = lib.cell("top");
  for (int i = 0; i < 16; ++i) {
    layout::CellRef ref;
    ref.child = i == eco ? "leaf_eco" : "leaf";
    ref.transform =
        geom::Transform(geom::Point{(i % 4) * 4000, (i / 4) * 4000});
    top.add_ref(std::move(ref));
  }
  return lib;
}

/// Store sweep: the persistent correction store across process restarts.
/// Arg 0 = cold run (store written, the one window class solved fresh),
/// Arg 1 = warm resume on the unchanged chip (every window replayed from
/// the store, zero simulations), Arg 2 = incremental ECO resume after
/// widening one bar in 1 of the 16 placements (only the edited placement
/// re-solves; store_hits counts the windows replayed from disk).
void BM_FlatFlowStore(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "t3_store.ocs").string();
  opc::FlowSpec spec = flow_spec();
  spec.jobs = 1;
  spec.store_path = path;
  std::filesystem::remove(path);
  if (mode != 0) {
    // Warm/ECO resume from a store populated by an untimed cold run.
    layout::Library base = sref_chip();
    opc::run_flat_opc(base, "top", spec);
    spec.resume = true;
  }
  opc::FlowStats stats;
  for (auto _ : state) {
    layout::Library lib = sref_chip(mode == 2 ? 5 : -1);
    stats = opc::run_flat_opc(lib, "top", spec);
    benchmark::DoNotOptimize(stats);
  }
  std::filesystem::remove(path);
  state.counters["opc_runs"] = static_cast<double>(stats.opc_runs);
  state.counters["store_hits"] = static_cast<double>(stats.store_hits);
  state.counters["appended"] =
      static_cast<double>(stats.store_entries_appended);
}
BENCHMARK(BM_FlatFlowStore)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace

/// Like BENCHMARK_MAIN(), but the machine-readable report is on by
/// default: without an explicit --benchmark_out, results are written to
/// BENCH_t3.json (JSON format) next to the console report, so the CI
/// bench job always leaves a trendable artifact behind.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  static std::string out_flag = "--benchmark_out=BENCH_t3.json";
  static std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
