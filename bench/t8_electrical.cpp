/// T8 — electrical impact of OPC on timing and leakage (extension).
///
/// Post-OPC extraction closes the loop back to design: the printed gates
/// of the logic cell are sliced into width segments, their CD profiles
/// collapse into drive- and leakage-equivalent lengths, and first-order
/// delay/leakage factors follow. Expected shape: without OPC, gates print
/// short — faster but with multiples of nominal leakage and a wide
/// corner-to-corner spread; model OPC centers delay at 1.0 and collapses
/// the leakage ratio toward 1.
#include <cmath>

#include "core/electrical.h"
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("t8");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  const opc::RuleDeck deck = opc::default_rule_deck_180();
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 12;

  struct Flavor {
    std::string name;
    std::vector<geom::Polygon> mask;
  };
  const std::vector<Flavor> flavors{
      {"none", target},
      {"rule", opc::apply_rule_opc(target, deck).corrected},
      {"model", opc::run_model_opc(target, process, window, mspec).corrected},
  };

  // The two vertical gates of the cell; the sampled channel spans
  // y 400..1400 — clear of the tips (pullback), the landing pads, and
  // the horizontal route that crosses the gates at y 1500..1680.
  struct Gate {
    geom::Point start;
    double width_nm;
  };
  const std::vector<Gate> gates{{{690, 400}, 1000.0}, {{1490, 400}, 1000.0}};
  const opc::DeviceModel device;
  const litho::Simulator sim(process, window);

  util::Table table({"flavor", "condition", "L_drive_nm", "L_leak_nm",
                     "delay_x", "leakage_x"});
  for (const auto& flavor : flavors) {
    for (const auto& [cond, defocus, dose] :
         std::vector<std::tuple<std::string, double, double>>{
             {"nominal", 0.0, 1.0}, {"worst", 200.0, 1.05}}) {
      const litho::Image lat = sim.latent(flavor.mask, defocus);
      const double thr = sim.threshold(dose);
      // Aggregate across both gates (worst leakage, slowest delay).
      double worst_delay = 0.0, worst_leak = 0.0;
      double l_drive_repr = 0.0, l_leak_repr = 0.0;
      for (const Gate& g : gates) {
        const auto profile = opc::extract_gate_profile(
            lat, g.start, {0, 1}, g.width_nm, thr, 50.0);
        if (profile.lost_slices > 0 || profile.slice_cd_nm.empty()) {
          worst_delay = std::nan("");
          break;
        }
        const double ld = opc::drive_equivalent_length(profile, device);
        const double ll = opc::leakage_equivalent_length(profile, device);
        worst_delay = std::max(worst_delay, opc::relative_delay(ld, device));
        worst_leak = std::max(worst_leak, opc::relative_leakage(ll, device));
        l_drive_repr = ld;
        l_leak_repr = ll;
      }
      table.add_row(flavor.name, cond, l_drive_repr, l_leak_repr,
                    worst_delay, worst_leak);
    }
  }
  exp::emit("T8",
            "gate electrical impact (alpha-power slices; x = vs nominal)",
            table);
  return 0;
}
