/// T4 — post-OPC verification (ORC) violation counts.
///
/// Runs the ORC deck (EPE spec, pinch, bridge, SRAF printing; nominal plus
/// two process corners) against the logic cell with no correction, rule
/// OPC, and model OPC. Expected shape: uncorrected data fails EPE broadly
/// (line ends worst); rule OPC clears the 1D errors but leaves 2D
/// residues; model OPC is clean or nearly so.
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("t4");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  const opc::RuleDeck deck = opc::default_rule_deck_180();
  opc::ModelOpcSpec mspec;
  mspec.max_iterations = 12;

  opc::OrcSpec orc;
  orc.epe_spec_nm = 10.0;

  struct Flavor {
    std::string name;
    std::vector<geom::Polygon> mask;
  };
  const std::vector<Flavor> flavors{
      {"none", target},
      {"rule", opc::apply_rule_opc(target, deck).corrected},
      {"model", opc::run_model_opc(target, process, window, mspec).corrected},
  };

  util::Table table({"flavor", "epe_viol", "lost_edge", "pinch", "bridge",
                     "mean_epe_nm", "max_abs_epe_nm"});
  for (const auto& flavor : flavors) {
    const opc::OrcReport rep =
        opc::run_orc(target, flavor.mask, {}, process, window, orc);
    table.add_row(flavor.name, rep.count(opc::OrcViolationKind::kEpe),
                  rep.count(opc::OrcViolationKind::kLostEdge),
                  rep.count(opc::OrcViolationKind::kPinch),
                  rep.count(opc::OrcViolationKind::kBridge),
                  rep.epe_stats.mean(), rep.epe_stats.max_abs());
  }
  exp::emit("T4",
            "ORC violations (|EPE|<=10nm spec; nominal + 2 corners)",
            table);
  return 0;
}
