/// T12 — pixel ILT vs model OPC on the hard-pattern corpus.
///
/// The escalation story: model OPC moves edges, so its floor is set by
/// what edge movement can express. The patterns that stay hard at that
/// floor are exactly the ones the paper's era pushed to aggressive RET —
/// line-end pullback across a tip-to-tip gap, dense contact corners, and
/// the forbidden-pitch region where the proximity signature inverts.
/// This experiment runs both engines on the same three-case corpus with
/// the same metrology (design-intent fragment probes) and reports, per
/// case and corpus-wide:
///
///  * worst-case |EPE| over run/line-end sites (corner sites excluded —
///    corner rounding is scored separately by both engines; a lost edge
///    counts as the full probe range),
///  * RMS EPE over the same sites,
///  * mask data volume as output vertex count (the paper's figure-count
///    cost axis: ILT's freeform masks are better but bigger).
///
/// Output: the usual text table plus BENCH_t12.json (path overridable as
/// argv[1]). Acceptance, enforced as exit status:
///  * corpus-wide worst-case EPE improves by >= 30% under ILT,
///  * every legalized ILT mask passes the mask_deck_180 signoff gate
///    (the claim that makes ILT a drop-in engine, not a special flow).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flow.h"
#include "exp_common.h"
#include "ilt/ilt.h"
#include "mrc/mrc.h"

namespace {

using namespace opckit;

struct Case {
  std::string name;
  std::vector<geom::Polygon> targets;
  geom::Rect window;
};

geom::Polygon rect_poly(geom::Coord x0, geom::Coord y0, geom::Coord x1,
                        geom::Coord y1) {
  return geom::Polygon(geom::Rect(x0, y0, x1, y1));
}

/// Tip-to-tip: two 180 nm line ends facing across a 240 nm gap, flanked
/// by parallel neighbours at 360 nm pitch. Line-end pullback plus the
/// neighbour coupling is the classic model-OPC floor case.
Case tip_to_tip() {
  Case c;
  c.name = "tip_to_tip";
  c.targets.push_back(rect_poly(-90, -1000, 90, -120));
  c.targets.push_back(rect_poly(-90, 120, 90, 1000));
  c.targets.push_back(rect_poly(-450, -1000, -270, 1000));
  c.targets.push_back(rect_poly(270, -1000, 450, 1000));
  c.window = geom::Rect(-650, -1200, 650, 1200);
  return c;
}

/// Dense contact array: 3x3 square contacts, 220 nm at 440 nm pitch.
/// Corner rounding eats the area and the array coupling shifts every
/// edge; hammerhead-style solutions are outside the edge-move space.
Case contact_array() {
  Case c;
  c.name = "contact_array";
  for (int j = -1; j <= 1; ++j) {
    for (int i = -1; i <= 1; ++i) {
      const geom::Coord cx = static_cast<geom::Coord>(i) * 440;
      const geom::Coord cy = static_cast<geom::Coord>(j) * 440;
      c.targets.push_back(rect_poly(cx - 110, cy - 110, cx + 110, cy + 110));
    }
  }
  c.window = geom::Rect(-800, -800, 800, 800);
  return c;
}

/// Forbidden pitch: 180 nm lines at 560 nm pitch — the semi-dense region
/// where the first diffraction sidelobe lands on the neighbour and the
/// proximity correction a grating wants is wrong for the line itself.
Case forbidden_pitch() {
  Case c;
  c.name = "forbidden_pitch";
  for (int i = -2; i <= 2; ++i) {
    const geom::Coord cx = static_cast<geom::Coord>(i) * 560;
    c.targets.push_back(rect_poly(cx - 90, -900, cx + 90, 900));
  }
  c.window = geom::Rect(-1400, -1100, 1400, 1100);
  return c;
}

struct Score {
  double worst_epe = 0.0;
  double rms_epe = 0.0;
  std::size_t sites = 0;
  std::size_t lost = 0;
  std::size_t vertices = 0;
};

/// Score a corrected mask with the solver's own metrology: fragment the
/// drawn targets, probe every run/line-end site, count a lost edge as
/// the full probe range.
Score score_mask(const Case& c, const std::vector<geom::Polygon>& mask,
                 const litho::SimSpec& sim, const opc::ModelOpcSpec& spec) {
  const auto frags = opc::fragment_polygons(c.targets, spec.fragmentation);
  const auto epe = opc::measure_fragment_epe(c.targets, frags, mask, sim,
                                             c.window, spec.probe_range_nm);
  Score s;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    if (frags[i].kind == opc::FragmentKind::kCorner) continue;
    const double e =
        std::isfinite(epe[i]) ? std::abs(epe[i]) : spec.probe_range_nm;
    if (!std::isfinite(epe[i])) ++s.lost;
    s.worst_epe = std::max(s.worst_epe, e);
    sum2 += e * e;
    ++s.sites;
  }
  s.rms_epe = s.sites ? std::sqrt(sum2 / static_cast<double>(s.sites)) : 0.0;
  for (const auto& p : mask) s.vertices += p.size();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_t12.json";
  const litho::SimSpec sim = exp::calibrated_process();
  opc::ModelOpcSpec model_spec;
  model_spec.max_iterations = 24;  // let model OPC reach its floor
  ilt::IltSpec ilt_spec;

  const std::vector<Case> corpus = {tip_to_tip(), contact_array(),
                                    forbidden_pitch()};

  util::Table table({"case", "model_worst", "ilt_worst", "improvement",
                     "model_rms", "ilt_rms", "model_vertices",
                     "ilt_vertices", "ilt_deck_clean"});
  std::ostringstream json;
  json << "{\"experiment\":\"t12_ilt\",\"cases\":[";

  double model_corpus_worst = 0.0;
  double ilt_corpus_worst = 0.0;
  bool all_deck_clean = true;
  const mrc::Deck deck = mrc::mask_deck_180();

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Case& c = corpus[i];
    const auto model =
        opc::run_model_opc(c.targets, sim, c.window, model_spec);
    const auto ilt_res = ilt::run_pixel_ilt(c.targets, sim, c.window,
                                            ilt_spec);
    const Score ms = score_mask(c, model.corrected, sim, model_spec);
    const Score is = score_mask(c, ilt_res.corrected, sim, model_spec);
    const bool deck_clean =
        mrc::check_polygons(ilt_res.corrected, deck).clean();
    const double improvement =
        ms.worst_epe > 0.0 ? 1.0 - is.worst_epe / ms.worst_epe : 0.0;

    model_corpus_worst = std::max(model_corpus_worst, ms.worst_epe);
    ilt_corpus_worst = std::max(ilt_corpus_worst, is.worst_epe);
    all_deck_clean = all_deck_clean && deck_clean;

    table.add_row(c.name, ms.worst_epe, is.worst_epe, improvement,
                  ms.rms_epe, is.rms_epe, static_cast<long long>(ms.vertices),
                  static_cast<long long>(is.vertices),
                  deck_clean ? "yes" : "NO");
    json << (i ? "," : "") << "{\"case\":\"" << c.name
         << "\",\"model_worst_epe\":" << util::format_double(ms.worst_epe)
         << ",\"ilt_worst_epe\":" << util::format_double(is.worst_epe)
         << ",\"improvement\":" << util::format_double(improvement)
         << ",\"model_rms_epe\":" << util::format_double(ms.rms_epe)
         << ",\"ilt_rms_epe\":" << util::format_double(is.rms_epe)
         << ",\"model_lost\":" << ms.lost << ",\"ilt_lost\":" << is.lost
         << ",\"model_vertices\":" << ms.vertices
         << ",\"ilt_vertices\":" << is.vertices
         << ",\"ilt_iterations\":" << ilt_res.iterations
         << ",\"ilt_deck_clean\":" << (deck_clean ? "true" : "false") << "}";
  }

  const double corpus_improvement =
      model_corpus_worst > 0.0 ? 1.0 - ilt_corpus_worst / model_corpus_worst
                               : 0.0;
  json << "],\"model_corpus_worst_epe\":"
       << util::format_double(model_corpus_worst)
       << ",\"ilt_corpus_worst_epe\":"
       << util::format_double(ilt_corpus_worst)
       << ",\"corpus_improvement\":" << util::format_double(corpus_improvement)
       << ",\"all_deck_clean\":" << (all_deck_clean ? "true" : "false")
       << "}\n";

  exp::emit("T12", "pixel ILT vs model OPC on hard patterns", table);
  std::ofstream(json_path) << json.str();
  std::cout << "wrote " << json_path << '\n';

  if (!all_deck_clean) {
    std::cerr << "t12: a legalized ILT mask failed mask_deck_180 signoff\n";
    return 1;
  }
  if (corpus_improvement < 0.30) {
    std::cerr << "t12: corpus worst-case EPE improvement "
              << corpus_improvement << " below the 30% acceptance floor\n";
    return 1;
  }
  return 0;
}
