/// T2 — mask data-volume explosion vs. fragmentation granularity.
///
/// The cost side of OPC adoption: GDSII bytes, polygon/vertex counts, and
/// fracture (trapezoid) counts of the corrected mask relative to the
/// drawn design, as model-OPC fragment length sweeps from coarse to fine.
/// Rule OPC (serifs) is included as the historical midpoint. Expected
/// shape: vertex and figure counts grow by 3-10x, monotonically as
/// fragments shrink.
#include "exp_common.h"

int main() {
  using namespace opckit;
  const litho::SimSpec process = exp::calibrated_process();

  layout::Library lib("t2");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  const opc::MaskDataStats before = opc::measure_mask_data(target);

  util::Table table({"mask", "polygons", "vertices", "fracture_rects",
                     "gdsii_bytes", "vertex_x", "byte_x"});
  auto add = [&](const std::string& name,
                 const std::vector<geom::Polygon>& mask) {
    const opc::MaskDataStats s = opc::measure_mask_data(mask);
    const opc::DataVolumeRatio r = opc::explosion(before, s);
    table.add_row(name, s.polygons, s.vertices, s.fracture_rects,
                  s.gdsii_bytes, r.vertex_factor, r.byte_factor);
  };

  add("drawn", target);
  add("rule_opc",
      opc::apply_rule_opc(target, opc::default_rule_deck_180()).corrected);

  for (geom::Coord frag_len : {160, 120, 80, 48}) {
    opc::ModelOpcSpec mspec;
    mspec.max_iterations = 10;
    mspec.fragmentation.target_length = frag_len;
    mspec.fragmentation.corner_length = std::min<geom::Coord>(60, frag_len);
    mspec.fragmentation.min_length = 24;
    const auto r = opc::run_model_opc(target, process, window, mspec);
    add("model_frag" + std::to_string(frag_len), r.corrected);
  }

  exp::emit("T2", "mask data volume vs correction (logic cell)", table);
  return 0;
}
